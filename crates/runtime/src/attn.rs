//! Planned sparse attention: the activation-side plan/execute split.
//!
//! The weight side of the engine plans once and replays per request
//! ([`crate::MatmulPlan`]); this module gives the *activation* side the
//! same treatment. Attention's inner product `S = Q Kᵀ` is an SDDMM —
//! only the positions a mask allows are ever needed — and the paper's
//! companion routine (§9a, and Magicube's second kernel) emits it
//! directly in compressed form, ready to feed softmax and the `P·V`
//! SpMM without a dense round trip.
//!
//! Three pieces:
//!
//! * [`AttentionMask`] — dynamic per-request masks (causal,
//!   sliding-window, blockwise) as first-class values. A mask is a
//!   predicate, not a matrix: the dense path applies it in place and the
//!   planned path condenses it into a gather order, so no `O(seq²)` mask
//!   storage ever materializes.
//! * [`SddmmPlan`] — stage `K` once (the exact f16→f32 decode the
//!   one-shot kernel performs per call), replay per head or request.
//!   Replay is bit-identical to one-shot [`venom_core::sddmm()`].
//! * [`AttentionPlan`] — the full pipeline `SDDMM → masked softmax over
//!   the compressed scores → P·V`, computed only at the mask's sampled
//!   positions yet bit-identical to the dense reference chain
//!   (`gemm_parallel` → mask → `softmax_rows` → `gemm_parallel`),
//!   because masked entries contribute exactly-zero terms the dense
//!   accumulation order already skips or absorbs.
//!
//! Both plans are priced from [`venom_core::sddmm_counts`]-derived
//! [`KernelCounts`], answer `regime(dev)`, and pick between the mma and
//! swapped-operand SDDMM schedules by simulated cost — the same
//! flip-on-cost discipline as `plan_auto`, no thresholds.

use crate::matmul::PlanError;
use crate::serve::PlanKey;
use crate::MatmulDescriptor;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use venom_core::{sddmm_counts, sddmm_counts_swapped};
use venom_format::{SparsityMask, VnmConfig, VnmMatrix};
use venom_fp16::{f16_to_f32_table, f32_to_f16_bits, Half};
use venom_sim::pipeline::{simulate, KernelCounts, KernelTiming};
use venom_sim::{DeviceConfig, Regime, Roofline};
use venom_tensor::Matrix;

/// A dynamic attention mask: which key positions each query row may
/// attend to. First-class and cheap to pass around — the block structure
/// only materializes (as a [`SparsityMask`]) when a V:N:M kernel needs
/// it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AttentionMask {
    /// Decoder masking: position `r` attends to positions `c <= r`.
    Causal,
    /// Causal sliding window: position `r` attends to the last `window`
    /// positions `c` with `r - window < c <= r` (Longformer/Mistral
    /// style local attention).
    SlidingWindow {
        /// Window length in positions (>= 1); `window >= seq` degenerates
        /// to [`AttentionMask::Causal`].
        window: usize,
    },
    /// Block-diagonal masking: the sequence splits into contiguous
    /// blocks of `block` positions and attention stays within a block —
    /// the blockwise structure [`SparsityMask`] groups columns by.
    Blockwise {
        /// Block length in positions (>= 1).
        block: usize,
    },
}

impl AttentionMask {
    /// Whether query row `r` may attend to key column `c`.
    #[inline]
    pub fn allows(&self, r: usize, c: usize) -> bool {
        match *self {
            AttentionMask::Causal => c <= r,
            AttentionMask::SlidingWindow { window } => c <= r && r - c < window,
            AttentionMask::Blockwise { block } => r / block.max(1) == c / block.max(1),
        }
    }

    /// The contiguous range of key columns row `r` attends to at
    /// sequence length `seq`. Every supported mask kind is contiguous
    /// per row, which is what lets the planned path store a condensed
    /// gather order instead of a bitmap.
    pub fn row_range(&self, r: usize, seq: usize) -> core::ops::Range<usize> {
        match *self {
            AttentionMask::Causal => 0..(r + 1).min(seq),
            AttentionMask::SlidingWindow { window } => {
                (r + 1).saturating_sub(window.max(1))..(r + 1).min(seq)
            }
            AttentionMask::Blockwise { block } => {
                let b = block.max(1);
                (r / b) * b..((r / b + 1) * b).min(seq)
            }
        }
    }

    /// Allowed positions over a `seq x seq` score matrix.
    pub fn nnz(&self, seq: usize) -> usize {
        (0..seq).map(|r| self.row_range(r, seq).len()).sum()
    }

    /// Fraction of the `seq x seq` score matrix the mask keeps.
    pub fn density(&self, seq: usize) -> f64 {
        if seq == 0 {
            return 0.0;
        }
        self.nnz(seq) as f64 / (seq * seq) as f64
    }

    /// Materializes the predicate as a [`SparsityMask`] — the bridge to
    /// the V:N:M block structure ([`SparsityMask::complies_vnm`],
    /// [`SparsityMask::and`] for intersecting with a pattern's selected
    /// columns).
    pub fn to_sparsity_mask(&self, seq: usize) -> SparsityMask {
        SparsityMask::from_fn(seq, seq, |r, c| self.allows(r, c))
    }

    /// The mask kind as a census label.
    pub fn kind(&self) -> &'static str {
        match self {
            AttentionMask::Causal => "causal",
            AttentionMask::SlidingWindow { .. } => "sliding-window",
            AttentionMask::Blockwise { .. } => "blockwise",
        }
    }

    /// A fingerprint salt folding the mask kind and parameters — mixed
    /// into [`PlanKey`]s so same-shape plans under different masks occupy
    /// distinct cache lines.
    pub fn salt(&self) -> u64 {
        let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        let h = 0xcbf2_9ce4_8422_2325u64;
        match *self {
            AttentionMask::Causal => mix(h, 1),
            AttentionMask::SlidingWindow { window } => mix(mix(h, 2), window as u64),
            AttentionMask::Blockwise { block } => mix(mix(h, 3), block as u64),
        }
    }

    /// Shape/parameter validation shared by the plan builders.
    fn validate(&self) -> Result<(), PlanError> {
        let bad = |reason: String| PlanError::Unplannable {
            what: "attention",
            reason,
        };
        match *self {
            AttentionMask::SlidingWindow { window: 0 } => {
                Err(bad("sliding window length must be at least 1".into()))
            }
            AttentionMask::Blockwise { block: 0 } => {
                Err(bad("block length must be at least 1".into()))
            }
            _ => Ok(()),
        }
    }
}

impl core::fmt::Display for AttentionMask {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AttentionMask::Causal => write!(f, "causal"),
            AttentionMask::SlidingWindow { window } => write!(f, "sliding-window({window})"),
            AttentionMask::Blockwise { block } => write!(f, "blockwise({block})"),
        }
    }
}

/// Which SDDMM schedule a plan replays — selected by simulated cost at
/// build time, exactly like `plan_auto` picks a weight format.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SddmmPath {
    /// Row-tiled dense `mma` over the gathered K columns
    /// ([`venom_core::sddmm_counts`]).
    Mma,
    /// Swapped-operand stream: tile only the condensed columns, stream Q
    /// ([`venom_core::sddmm_counts_swapped`]).
    Swapped,
}

impl core::fmt::Display for SddmmPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SddmmPath::Mma => write!(f, "sddmm-mma"),
            SddmmPath::Swapped => write!(f, "sddmm-swapped"),
        }
    }
}

/// Prices both SDDMM schedules and returns the cheaper one with its
/// counts and timing. The flip is pure cost comparison (`cost_cmp`), no
/// shape thresholds.
fn select_sddmm_path(
    r: usize,
    d: usize,
    c: usize,
    cfg: VnmConfig,
    dev: &DeviceConfig,
) -> (SddmmPath, KernelCounts, KernelTiming) {
    let mma = sddmm_counts(r, d, c, cfg);
    let swapped = sddmm_counts_swapped(r, d, c, cfg);
    let t_mma = simulate(dev, &mma).expect("sddmm counts fit the shipped presets");
    let t_swapped = simulate(dev, &swapped).expect("swapped sddmm counts fit the shipped presets");
    if crate::pricing::cost_cmp(t_swapped.time_ms, t_mma.time_ms) == core::cmp::Ordering::Less {
        (SddmmPath::Swapped, swapped, t_swapped)
    } else {
        (SddmmPath::Mma, mma, t_mma)
    }
}

/// A planned SDDMM: `K` is staged once (transposed, decoded through the
/// exact f16→f32 table) and the sampled positions are condensed into a
/// gather order, so replaying against a fresh `Q` pays neither staging
/// nor pattern discovery. Replay is bit-identical to one-shot
/// [`venom_core::sddmm()`]: each sampled dot product accumulates in the
/// same `kk` order over the same staged values.
#[derive(Clone, Debug)]
pub struct SddmmPlan {
    rows: usize,
    d: usize,
    cols: usize,
    cfg: VnmConfig,
    pattern: SparsityMask,
    /// K transposed and decoded: `kt[c * d + kk] = f32(K[kk][c])`.
    kt_f32: Vec<f32>,
    /// Condensed gather order: `cols_idx[row_ptr[r]..row_ptr[r+1]]` are
    /// row `r`'s sampled columns, ascending — the accumulation order the
    /// one-shot kernel uses.
    row_ptr: Vec<u32>,
    cols_idx: Vec<u32>,
    path: SddmmPath,
    counts: KernelCounts,
    timing: KernelTiming,
}

impl SddmmPlan {
    /// Stages `k` and condenses `pattern` into a replayable plan.
    ///
    /// # Errors
    /// [`PlanError::Unplannable`] when the pattern does not comply with
    /// `cfg` or the shapes disagree.
    pub fn build(
        k: &Matrix<Half>,
        pattern: &SparsityMask,
        cfg: VnmConfig,
        dev: &DeviceConfig,
    ) -> Result<SddmmPlan, PlanError> {
        let bad = |reason: String| PlanError::Unplannable {
            what: "sddmm",
            reason,
        };
        if pattern.cols() != k.cols() {
            return Err(bad(format!(
                "pattern has {} columns but K has {}",
                pattern.cols(),
                k.cols()
            )));
        }
        if !pattern.complies_vnm(cfg) {
            return Err(bad(format!("pattern does not comply with {cfg}")));
        }
        let (rows, d, cols) = (pattern.rows(), k.rows(), k.cols());

        // Stage K transposed exactly as the one-shot kernel does per
        // call: one contiguous decoded column per sampled dot product.
        let table = f16_to_f32_table();
        let mut kt_f32 = vec![0.0f32; d * cols];
        for kk in 0..d {
            let krow = k.row(kk);
            for (c, &kv) in krow.iter().enumerate() {
                kt_f32[c * d + kk] = table[kv.to_bits() as usize];
            }
        }

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut cols_idx = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for c in pattern.row_indices(r) {
                cols_idx.push(c as u32);
            }
            row_ptr.push(cols_idx.len() as u32);
        }

        let (path, counts, timing) = select_sddmm_path(rows, d, cols, cfg, dev);
        Ok(SddmmPlan {
            rows,
            d,
            cols,
            cfg,
            pattern: pattern.clone(),
            kt_f32,
            row_ptr,
            cols_idx,
            path,
            counts,
            timing,
        })
    }

    /// Replays the plan against a fresh `Q`: the sampled product in the
    /// pattern's compressed V:N:M layout, bit-identical to
    /// `venom_core::sddmm(q, k, pattern, cfg, Functional, dev).out`.
    ///
    /// # Panics
    /// Panics when `q`'s shape disagrees with the staged `K`/pattern.
    pub fn replay(&self, q: &Matrix<Half>) -> VnmMatrix {
        assert_eq!(q.cols(), self.d, "inner dimensions must agree");
        assert_eq!(q.rows(), self.rows, "pattern rows must match Q");
        let timer = venom_obs::profile::PhaseTimer::start();
        let q_f32 = venom_fp16::slice::decode_f32_vec(q.as_slice());
        timer.stop("sddmm", "stage", (q.len() * 2) as u64);
        let d = self.d;
        let timer = venom_obs::profile::PhaseTimer::start();
        let mut out = vec![Half::ZERO; self.rows * self.cols];
        match self.path {
            // Row-major replay: each row walks its condensed gather
            // order (the mma schedule's tile order).
            SddmmPath::Mma => {
                out.par_chunks_mut(self.cols)
                    .enumerate()
                    .for_each(|(r, orow)| {
                        let qrow = &q_f32[r * d..(r + 1) * d];
                        let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                        for &c in &self.cols_idx[lo..hi] {
                            let kcol = &self.kt_f32[c as usize * d..(c as usize + 1) * d];
                            orow[c as usize] = Half::from_f32(dot_f32(qrow, kcol));
                        }
                    });
            }
            // Swapped-operand replay: stream Q once per condensed
            // column slab. Each sampled dot still accumulates in `kk`
            // order over the same staged values, so the bits cannot
            // differ — only the traversal (and the priced schedule)
            // does.
            SddmmPath::Swapped => {
                out.par_chunks_mut(self.cols)
                    .enumerate()
                    .for_each(|(r, orow)| {
                        let qrow = &q_f32[r * d..(r + 1) * d];
                        let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                        // Walk the slab column-major within the row's run:
                        // identical element set, identical per-element chain.
                        for &c in self.cols_idx[lo..hi].iter() {
                            let kcol = &self.kt_f32[c as usize * d..(c as usize + 1) * d];
                            orow[c as usize] = Half::from_f32(dot_f32(qrow, kcol));
                        }
                    });
            }
        }
        // Compulsory traffic of the gather-order replay: the staged K
        // panel, the condensed index planes, and the sampled outputs.
        timer.stop(
            "sddmm",
            "gather",
            (self.kt_f32.len() * 4
                + self.cols_idx.len() * 4
                + self.row_ptr.len() * 4
                + self.cols_idx.len() * 2) as u64,
        );
        let timer = venom_obs::profile::PhaseTimer::start();
        let dense = Matrix::from_vec(self.rows, self.cols, out);
        let compressed = VnmMatrix::compress(&dense, &self.pattern, self.cfg);
        timer.stop("sddmm", "epilogue", (self.cols_idx.len() * 2) as u64);
        compressed
    }

    /// The schedule cost selection picked.
    pub fn path(&self) -> SddmmPath {
        self.path
    }

    /// The V:N:M pattern the plan samples.
    pub fn pattern(&self) -> &SparsityMask {
        &self.pattern
    }

    /// `(rows, d, cols)` of the sampled product.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.rows, self.d, self.cols)
    }

    /// The priced resource counts of the selected schedule.
    pub fn counts(&self) -> &KernelCounts {
        &self.counts
    }

    /// Simulated timing of one replay on the build device.
    pub fn timing(&self) -> &KernelTiming {
        &self.timing
    }

    /// Simulated milliseconds per replay.
    pub fn cost_ms(&self) -> f64 {
        self.timing.time_ms
    }

    /// Roofline placement of the selected schedule on `dev`.
    pub fn roofline(&self, dev: &DeviceConfig) -> Roofline {
        venom_sim::roofline::analyze(dev, &self.counts)
    }

    /// Compute- or memory-bound verdict on `dev`.
    pub fn regime(&self, dev: &DeviceConfig) -> Regime {
        self.roofline(dev).regime()
    }

    /// Approximate resident bytes (the staged K plus the gather order).
    pub fn approx_bytes(&self) -> usize {
        self.kt_f32.len() * 4 + self.cols_idx.len() * 4 + self.row_ptr.len() * 4
    }
}

/// Accumulates `a · b` in index order — the scalar `mac_f32` chain every
/// reference kernel uses.
#[inline]
fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// A planned attention pipeline for one `(seq, hidden, heads, mask)`
/// shape: SDDMM over the mask's condensed gather order, softmax over the
/// compressed scores, `P·V` over the same order — never materializing
/// the dense `seq x seq` score matrix, yet bit-identical to the dense
/// reference chain at every unmasked position (masked positions
/// contribute exactly-zero terms the dense order already absorbs).
#[derive(Clone, Debug)]
pub struct AttentionPlan {
    seq: usize,
    hidden: usize,
    heads: usize,
    d_head: usize,
    mask: AttentionMask,
    /// Condensed gather order over the `seq x seq` score matrix.
    row_ptr: Vec<u32>,
    cols: Vec<u32>,
    scale: f32,
    path: SddmmPath,
    counts: KernelCounts,
    timing: KernelTiming,
}

impl AttentionPlan {
    /// Builds and prices the plan.
    ///
    /// # Errors
    /// [`PlanError::Unplannable`] on a degenerate shape (zero sequence,
    /// heads not dividing hidden) or mask parameters.
    pub fn build(
        seq: usize,
        hidden: usize,
        heads: usize,
        mask: AttentionMask,
        dev: &DeviceConfig,
    ) -> Result<AttentionPlan, PlanError> {
        let bad = |reason: String| PlanError::Unplannable {
            what: "attention",
            reason,
        };
        mask.validate()?;
        if seq == 0 {
            return Err(bad("sequence length must be at least 1".into()));
        }
        if heads == 0 || !hidden.is_multiple_of(heads) {
            return Err(bad(format!(
                "heads ({heads}) must divide the hidden size ({hidden})"
            )));
        }
        let d_head = hidden / heads;

        let mut row_ptr = Vec::with_capacity(seq + 1);
        let mut cols = Vec::with_capacity(mask.nnz(seq));
        row_ptr.push(0u32);
        for r in 0..seq {
            cols.extend(mask.row_range(r, seq).map(|c| c as u32));
            row_ptr.push(cols.len() as u32);
        }

        let (path, counts, timing) = attn_price(seq, d_head, heads, cols.len(), mask, dev);
        Ok(AttentionPlan {
            seq,
            hidden,
            heads,
            d_head,
            mask,
            row_ptr,
            cols,
            scale: 1.0 / (d_head as f32).sqrt(),
            path,
            counts,
            timing,
        })
    }

    /// The attention matmuls over projected activations: per head,
    /// `softmax(Q_h K_hᵀ / sqrt(d)) V_h`, computed only at the mask's
    /// sampled positions. Bit-identical to the dense per-head chain
    /// (`gemm_parallel` scores, in-place mask, `softmax_rows`,
    /// `gemm_parallel` context) at every position.
    ///
    /// # Panics
    /// Panics when the operand shapes disagree with the planned
    /// `(seq, hidden)`.
    pub fn attention(&self, q: &Matrix<f32>, k: &Matrix<f32>, v: &Matrix<f32>) -> Matrix<f32> {
        let (seq, hidden, d) = (self.seq, self.hidden, self.d_head);
        for (name, m) in [("Q", q), ("K", k), ("V", v)] {
            assert_eq!(
                (m.rows(), m.cols()),
                (seq, hidden),
                "{name} shape must match the planned (seq, hidden)"
            );
        }
        let table = f16_to_f32_table();
        // Round through f16 and decode exactly — per element the same
        // value the dense path's `.to_half()` + staged decode produces.
        let stage = |m: &Matrix<f32>, c0: usize, buf: &mut [f32]| {
            for r in 0..seq {
                let row = &m.row(r)[c0..c0 + d];
                for (kk, &x) in row.iter().enumerate() {
                    buf[r * d + kk] = table[f32_to_f16_bits(x) as usize];
                }
            }
        };
        let mut ctx = Matrix::<f32>::zeros(seq, hidden);
        let mut qh = vec![0.0f32; seq * d];
        let mut kh = vec![0.0f32; seq * d];
        let mut vh = vec![0.0f32; seq * d];
        for h in 0..self.heads {
            let c0 = h * d;
            let timer = venom_obs::profile::PhaseTimer::start();
            stage(q, c0, &mut qh);
            stage(k, c0, &mut kh);
            stage(v, c0, &mut vh);
            timer.stop("attention", "stage", (3 * seq * d * 4) as u64);
            let timer = venom_obs::profile::PhaseTimer::start();
            let (qh, kh, vh) = (&qh, &kh, &vh);
            ctx.as_mut_slice()
                .par_chunks_mut(hidden)
                .enumerate()
                .for_each(|(r, orow)| {
                    let (lo, hi) = (self.row_ptr[r] as usize, self.row_ptr[r + 1] as usize);
                    let sampled = &self.cols[lo..hi];
                    let qrow = &qh[r * d..(r + 1) * d];
                    // Scores at the sampled positions, in ascending
                    // column order — the dense accumulation order minus
                    // the masked entries (whose -inf scores the dense
                    // path writes and then reduces to exact zeros).
                    let mut s: Vec<f32> = sampled
                        .iter()
                        .map(|&c| {
                            let kcol = &kh[c as usize * d..(c as usize + 1) * d];
                            dot_f32(qrow, kcol) * self.scale
                        })
                        .collect();
                    // Masked softmax over the compressed row. The row
                    // max over sampled entries equals the dense row max
                    // (masked entries are -inf); masked exp terms are
                    // +0.0 and leave the dense running sum bit-exact.
                    let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                    let out = &mut orow[c0..c0 + d];
                    if max == f32::NEG_INFINITY {
                        // Fully-masked (or empty) row: the dense guarded
                        // softmax yields zeros, so P·V contributes
                        // nothing and the context row stays zero.
                        return;
                    }
                    let mut sum = 0.0f32;
                    for sv in s.iter_mut() {
                        *sv = (*sv - max).exp();
                        sum += *sv;
                    }
                    // P·V over the same gather order: probabilities
                    // round through f16 exactly as the dense path's
                    // `probs.to_half()`, and exact-zero probabilities
                    // are skipped — the dense kernel skips them too.
                    for (sv, &c) in s.iter().zip(sampled) {
                        let p = Half::from_f32(*sv / sum);
                        if p.is_zero() {
                            continue;
                        }
                        let pv = table[p.to_bits() as usize];
                        let vrow = &vh[c as usize * d..(c as usize + 1) * d];
                        for (o, &x) in out.iter_mut().zip(vrow) {
                            *o += pv * x;
                        }
                    }
                });
            // Per-head compulsory traffic: the staged K and V panels,
            // the context slice written once, and the condensed index
            // planes driving the gather.
            timer.stop(
                "attention",
                "mma",
                (3 * seq * d * 4 + self.cols.len() * 4 + self.row_ptr.len() * 4) as u64,
            );
        }
        ctx
    }

    /// The mask the plan was condensed from.
    pub fn mask(&self) -> AttentionMask {
        self.mask
    }

    /// `(seq, hidden, heads)` of the planned shape.
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.seq, self.hidden, self.heads)
    }

    /// Sampled score positions per head.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// Fraction of the dense `seq x seq` score matrix the plan computes.
    pub fn density(&self) -> f64 {
        self.mask.density(self.seq)
    }

    /// The SDDMM schedule cost selection picked.
    pub fn path(&self) -> SddmmPath {
        self.path
    }

    /// The priced resource counts of the whole pipeline.
    pub fn counts(&self) -> &KernelCounts {
        &self.counts
    }

    /// Simulated timing of one forward on the build device.
    pub fn timing(&self) -> &KernelTiming {
        &self.timing
    }

    /// Simulated milliseconds per forward.
    pub fn cost_ms(&self) -> f64 {
        self.timing.time_ms
    }

    /// Roofline placement of the pipeline on `dev`.
    pub fn roofline(&self, dev: &DeviceConfig) -> Roofline {
        venom_sim::roofline::analyze(dev, &self.counts)
    }

    /// Compute- or memory-bound verdict on `dev`.
    pub fn regime(&self, dev: &DeviceConfig) -> Regime {
        self.roofline(dev).regime()
    }

    /// Approximate resident bytes (the condensed gather order).
    pub fn approx_bytes(&self) -> usize {
        self.cols.len() * 4 + self.row_ptr.len() * 4
    }

    /// The cache key for this plan's `(shape, mask)` pair.
    pub fn key(&self) -> PlanKey {
        attention_key(self.seq, self.hidden, self.heads, &self.mask)
    }
}

/// The [`PlanKey`] for an attention plan: keyed on the `(seq, hidden)`
/// descriptor with the mask kind/parameters and head count folded into
/// the fingerprint — same-shape plans under different masks (or head
/// splits) occupy distinct cache lines.
pub fn attention_key(seq: usize, hidden: usize, heads: usize, mask: &AttentionMask) -> PlanKey {
    let desc = MatmulDescriptor::new(seq, hidden).with_b_cols(seq);
    let mix = |h: u64, v: u64| (h ^ v).wrapping_mul(0x0000_0100_0000_01b3);
    PlanKey::bare(desc).with_salt(mix(mask.salt(), heads as u64))
}

/// Prices the attention pipeline on both SDDMM schedules and keeps the
/// cheaper one. The counts derive from [`venom_core::sddmm_counts`] at a
/// V:N:M configuration whose condensed slab matches the mask's density
/// (`SELECTED_COLUMNS / m ≈ nnz / seq²`), scaled to all heads, with the
/// effective work pinned to the mask's true sampled positions — so
/// `regime(dev)` answers for the real pipeline, not a proxy.
fn attn_price(
    seq: usize,
    d_head: usize,
    heads: usize,
    nnz: usize,
    mask: AttentionMask,
    dev: &DeviceConfig,
) -> (SddmmPath, KernelCounts, KernelTiming) {
    let density = (nnz as f64 / (seq * seq).max(1) as f64).max(1e-6);
    // The equivalent V:N:M pattern: m sized so the condensed slab keeps
    // the same fraction of columns as the mask does.
    let m = ((venom_format::SELECTED_COLUMNS as f64 / density).round() as usize)
        .clamp(venom_format::SELECTED_COLUMNS, 4096);
    let cfg = VnmConfig::new(16, 2, m);
    let finish = |mut counts: KernelCounts| {
        counts.grid_blocks = counts.grid_blocks.saturating_mul(heads as u64).max(1);
        // SDDMM work plus the P·V pass over the same sampled entries.
        counts.effective_flops = (heads * 2 * nnz * d_head) as u64 * 2;
        counts.name = format!("attn[{mask}]");
        counts
    };
    let mma = finish(sddmm_counts(seq, d_head, seq, cfg));
    let swapped = finish(sddmm_counts_swapped(seq, d_head, seq, cfg));
    let t_mma = simulate(dev, &mma).expect("attn counts fit the shipped presets");
    let t_swapped = simulate(dev, &swapped).expect("swapped attn counts fit the shipped presets");
    if crate::pricing::cost_cmp(t_swapped.time_ms, t_mma.time_ms) == core::cmp::Ordering::Less {
        (SddmmPath::Swapped, swapped, t_swapped)
    } else {
        (SddmmPath::Mma, mma, t_mma)
    }
}

/// Counters of one [`AttnPlanCache`].
#[derive(Clone, Copy, Debug, Default)]
pub struct AttnCacheStats {
    /// Lookups that found a built plan.
    pub hits: u64,
    /// Lookups that found nothing under the key.
    pub misses: u64,
    /// Plans built and inserted.
    pub builds: u64,
}

/// A build-once cache for [`AttentionPlan`]s, keyed by the same
/// [`PlanKey`] discipline as the weight-plan [`crate::PlanCache`]
/// (descriptor + mask/heads fingerprint). Attention plans are small
/// (a condensed gather order), so no eviction policy is needed.
///
/// Counters are double-booked: per-instance atomics back
/// [`Self::stats`] (so a cache's own hit ratio stays exact), while the
/// process-wide [`venom_obs`] registry accumulates the same events
/// under `cache_{hits,misses,builds}_total{cache="attn"}` for
/// exposition next to the weight-plan cache's `cache="plan"` series.
#[derive(Debug)]
pub struct AttnPlanCache {
    inner: Mutex<HashMap<PlanKey, Arc<AttentionPlan>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    builds: AtomicU64,
    obs_hits: Arc<venom_obs::Counter>,
    obs_misses: Arc<venom_obs::Counter>,
    obs_builds: Arc<venom_obs::Counter>,
}

impl Default for AttnPlanCache {
    fn default() -> Self {
        let reg = venom_obs::registry();
        let labels = [("cache", "attn")];
        AttnPlanCache {
            inner: Mutex::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            builds: AtomicU64::new(0),
            obs_hits: reg.counter("cache_hits_total", &labels),
            obs_misses: reg.counter("cache_misses_total", &labels),
            obs_builds: reg.counter("cache_builds_total", &labels),
        }
    }
}

impl AttnPlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide cache serving stacks share by default.
    pub fn global() -> &'static Arc<AttnPlanCache> {
        static GLOBAL: OnceLock<Arc<AttnPlanCache>> = OnceLock::new();
        GLOBAL.get_or_init(|| Arc::new(AttnPlanCache::new()))
    }

    /// Returns the cached plan for `key`, building and inserting it on a
    /// miss.
    ///
    /// # Errors
    /// Propagates the builder's [`PlanError`]; failures are not cached.
    ///
    /// # Panics
    /// Panics if the cache mutex was poisoned by a panicking builder on
    /// another thread.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> Result<AttentionPlan, PlanError>,
    ) -> Result<Arc<AttentionPlan>, PlanError> {
        if let Some(hit) = self.inner.lock().expect("attn cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs_hits.inc();
            return Ok(Arc::clone(hit));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_misses.inc();
        let started = std::time::Instant::now();
        let plan = Arc::new(build()?);
        // Successful builds only, so the span count stays equal to the
        // `builds` counter a trace consumer cross-checks against.
        venom_obs::trace::record_complete("attn_plan_build", "cache", started, None);
        self.builds.fetch_add(1, Ordering::Relaxed);
        self.obs_builds.inc();
        // A racing builder may have inserted first; keep the existing
        // plan so every caller shares one Arc.
        let mut inner = self.inner.lock().expect("attn cache lock");
        let entry = inner.entry(key).or_insert_with(|| Arc::clone(&plan));
        Ok(Arc::clone(entry))
    }

    /// Hit/miss/build counters.
    pub fn stats(&self) -> AttnCacheStats {
        AttnCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venom_core::ExecMode;
    use venom_tensor::random;

    fn dev() -> DeviceConfig {
        DeviceConfig::rtx3090()
    }

    /// A V:N:M-compliant dynamic pattern (magnitude-ranked columns per
    /// block group, like attention sparsity would produce).
    fn vnm_pattern(rows: usize, cols: usize, cfg: VnmConfig, seed: u64) -> SparsityMask {
        let probe = random::normal_matrix(rows, cols, 0.0, 1.0, seed);
        let mut mask = SparsityMask::empty(rows, cols);
        for b in 0..cfg.row_blocks(rows) {
            let r0 = b * cfg.v;
            let r1 = (r0 + cfg.v).min(rows);
            for g in 0..cfg.k_groups(cols) {
                let c0 = g * cfg.m;
                let c1 = (c0 + cfg.m).min(cols);
                let mut cols_idx: Vec<usize> = (c0..c1).collect();
                cols_idx.sort_by(|&a, &bb| {
                    let sa: f32 = (r0..r1).map(|r| probe.get(r, a).abs()).sum();
                    let sb: f32 = (r0..r1).map(|r| probe.get(r, bb).abs()).sum();
                    sb.partial_cmp(&sa).unwrap()
                });
                let sel = &cols_idx[..venom_format::SELECTED_COLUMNS.min(cols_idx.len())];
                for r in r0..r1 {
                    for (j, &c) in sel.iter().enumerate() {
                        if j < cfg.n {
                            mask.set(r, c, true);
                        }
                    }
                }
            }
        }
        mask
    }

    #[test]
    fn mask_predicates_match_their_row_ranges() {
        let seq = 37;
        for mask in [
            AttentionMask::Causal,
            AttentionMask::SlidingWindow { window: 5 },
            AttentionMask::SlidingWindow { window: 64 },
            AttentionMask::Blockwise { block: 8 },
        ] {
            let mut nnz = 0;
            for r in 0..seq {
                let range = mask.row_range(r, seq);
                for c in 0..seq {
                    assert_eq!(
                        mask.allows(r, c),
                        range.contains(&c),
                        "{mask} disagrees at ({r},{c})"
                    );
                }
                assert!(!range.is_empty(), "{mask} row {r} must attend somewhere");
                assert!(range.contains(&r), "{mask} row {r} must see itself");
                nnz += range.len();
            }
            assert_eq!(mask.nnz(seq), nnz);
            assert_eq!(
                mask.to_sparsity_mask(seq).nnz(),
                nnz,
                "{mask} bitmap bridge disagrees"
            );
        }
    }

    #[test]
    fn mask_salts_separate_kinds_and_parameters() {
        let salts = [
            AttentionMask::Causal.salt(),
            AttentionMask::SlidingWindow { window: 8 }.salt(),
            AttentionMask::SlidingWindow { window: 16 }.salt(),
            AttentionMask::Blockwise { block: 8 }.salt(),
        ];
        for i in 0..salts.len() {
            for j in i + 1..salts.len() {
                assert_ne!(salts[i], salts[j], "salt collision {i} vs {j}");
            }
        }
        // Keys fold the salt: same shape, different mask, distinct keys.
        assert_ne!(
            attention_key(64, 128, 4, &AttentionMask::Causal),
            attention_key(64, 128, 4, &AttentionMask::SlidingWindow { window: 8 }),
        );
        assert_ne!(
            attention_key(64, 128, 4, &AttentionMask::Causal),
            attention_key(64, 128, 8, &AttentionMask::Causal),
            "head split must key separately"
        );
    }

    #[test]
    fn sddmm_plan_replay_is_bit_identical_to_oneshot() {
        // The conformance grid: V x {2:8, 2:16}.
        let (r, d, c) = (64usize, 24usize, 64usize);
        for v in [16usize, 32, 64] {
            for (n, m) in [(2usize, 8usize), (2, 16)] {
                let cfg = VnmConfig::new(v, n, m);
                let q = random::normal_matrix(r, d, 0.0, 1.0, 1).to_half();
                let k = random::normal_matrix(d, c, 0.0, 1.0, 2).to_half();
                let pattern = vnm_pattern(r, c, cfg, 3);
                assert!(pattern.complies_vnm(cfg));
                let plan = SddmmPlan::build(&k, &pattern, cfg, &dev()).unwrap();
                let want = venom_core::sddmm(&q, &k, &pattern, cfg, ExecMode::Functional, &dev());
                assert_eq!(
                    plan.replay(&q),
                    want.out,
                    "{cfg}: plan replay drifted from one-shot sddmm"
                );
            }
        }
    }

    #[test]
    fn sddmm_plan_path_flips_on_cost_with_query_rows() {
        let d = dev();
        let cfg = VnmConfig::new(16, 2, 8);
        let k = random::normal_matrix(64, 1024, 0.0, 1.0, 4).to_half();
        let short = vnm_pattern(16, 1024, cfg, 5);
        let tall = vnm_pattern(2048, 1024, cfg, 6);
        let short_plan = SddmmPlan::build(&k, &short, cfg, &d).unwrap();
        let tall_plan = SddmmPlan::build(&k, &tall, cfg, &d).unwrap();
        assert_eq!(short_plan.path(), SddmmPath::Swapped, "short Q streams");
        assert_eq!(tall_plan.path(), SddmmPath::Mma, "tall Q rides mma");
        // Both answer the roofline question.
        let _ = short_plan.regime(&d);
        let _ = tall_plan.regime(&d);
    }

    #[test]
    fn sddmm_plan_rejects_noncompliant_patterns() {
        let cfg = VnmConfig::new(16, 2, 8);
        let k = random::normal_matrix(16, 32, 0.0, 1.0, 7).to_half();
        let dense_pattern = SparsityMask::dense(32, 32);
        let err = SddmmPlan::build(&k, &dense_pattern, cfg, &dev()).unwrap_err();
        assert!(err.to_string().contains("comply"), "{err}");
    }

    #[test]
    fn attention_plan_prices_and_answers_regime() {
        let plan = AttentionPlan::build(128, 128, 4, AttentionMask::Causal, &dev()).unwrap();
        assert!(plan.cost_ms() > 0.0);
        assert_eq!(plan.nnz(), 128 * 129 / 2);
        let roof = plan.roofline(&dev());
        assert!(roof.intensity > 0.0);
        // Sparser masks must price cheaper at the same shape: the cost
        // derivation tracks the mask, not just the shape.
        let window = AttentionPlan::build(
            128,
            128,
            4,
            AttentionMask::SlidingWindow { window: 8 },
            &dev(),
        )
        .unwrap();
        assert!(
            window.cost_ms() < plan.cost_ms(),
            "sliding-window ({}) must price below causal ({})",
            window.cost_ms(),
            plan.cost_ms()
        );
    }

    #[test]
    fn attention_plan_rejects_degenerate_shapes() {
        let e = AttentionPlan::build(0, 64, 4, AttentionMask::Causal, &dev()).unwrap_err();
        assert!(e.to_string().contains("sequence"), "{e}");
        let e = AttentionPlan::build(8, 64, 5, AttentionMask::Causal, &dev()).unwrap_err();
        assert!(e.to_string().contains("divide"), "{e}");
        let e = AttentionPlan::build(8, 64, 4, AttentionMask::SlidingWindow { window: 0 }, &dev())
            .unwrap_err();
        assert!(e.to_string().contains("window"), "{e}");
    }

    #[test]
    fn attn_cache_builds_once_per_key() {
        let cache = AttnPlanCache::new();
        let d = dev();
        let key = attention_key(32, 64, 4, &AttentionMask::Causal);
        let build = || AttentionPlan::build(32, 64, 4, AttentionMask::Causal, &d);
        let a = cache.get_or_build(key, build).unwrap();
        let b = cache.get_or_build(key, build).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.builds), (1, 1, 1));
        // A different mask misses and builds its own plan.
        let key2 = attention_key(32, 64, 4, &AttentionMask::Blockwise { block: 8 });
        let c = cache
            .get_or_build(key2, || {
                AttentionPlan::build(32, 64, 4, AttentionMask::Blockwise { block: 8 }, &d)
            })
            .unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().builds, 2);
    }
}
