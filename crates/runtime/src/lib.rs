//! The inference engine: the cuSPARSELt-style descriptor/plan workflow
//! the paper benchmarks against (§7.2), over every storage format the
//! repository ships.
//!
//! The per-call [`venom_core::spmm`] entry point redoes tile-config
//! selection, cost-model pricing and operand staging on every invocation —
//! the right shape for one-shot benchmarks, the wrong one for serving,
//! where the compressed weights are static across every forward pass. An
//! [`Engine`] builds *plans* instead, behind one format-erased surface:
//!
//! * A [`MatmulDescriptor`] describes the matmul — weight shape, dtype,
//!   bias/activation epilogue, and the output-column bound the plan is
//!   tuned and priced for.
//! * [`Engine::plan_auto`] compresses the weights into every format
//!   their nonzero structure is eligible for (V:N:M, 2:4, CSR, CVSE,
//!   Blocked-ELL, dense), prices each with its cost model on the target
//!   device, and returns the cheapest as an `Arc<dyn `[`MatmulPlan`]`>` —
//!   so a model mixes formats per layer and callers never name one.
//!   [`Engine::plan_auto_measured`] adds a measured micro-autotune on
//!   top of the cost model; [`Engine::plan_with_format`] pins a format
//!   explicitly and reports *why* when the weights cannot serve it.
//! * The specialised builders remain: [`SpmmPlan`] captures, at build
//!   time, the autotuned [`TileConfig`] for the `(weight, b_cols)`
//!   shape, the weight's f32-staged operands condensed into a per-row
//!   `(value, B-row)` stream in the kernel's exact accumulation order,
//!   and the priced launch. [`GemmPlan`] is the dense analogue, priced
//!   on the cuBLAS model by [`Engine::plan_gemm`]; [`FormatPlan`] hosts
//!   the remaining formats through the same condensed stream;
//!   [`BandPlan`] is the bandwidth-optimized non-mma V:N:M variant
//!   (FlashSparse-style swapped-operand replay, priced on DRAM bytes)
//!   that [`Engine::plan_auto`] routes memory-bound shapes to; and
//!   [`QuantSpmmPlan`] is the int8 sibling — descriptors with
//!   [`descriptor::DType::I8`] plan the calibrated quantized V:N:M
//!   container, execute with exact i32 accumulation, and are priced on
//!   the `Uint8` `mma.sp` profile (half the operand bytes, half the
//!   instruction count).
//!
//! Every plan execution is **bit-identical** to the one-shot path it
//! amortises: the stream stores each row's nonzeros in the same order the
//! format's reference kernel accumulates in (pinned by
//! [`venom_format::SparseKernel::for_each_operand`]), with the same
//! exactly-decoded f32 products, so the f32 additions happen in the same
//! order with the same values. Batched runs concatenate requests along
//! the output-column dimension; columns are independent in every path, so
//! batching changes nothing numerically either.
//!
//! Per-call scratch (the staged RHS, intermediate products) leases from a
//! per-thread [`arena`], so steady-state serving performs no staging
//! allocations beyond the returned output matrices.

pub mod arena;
pub mod attn;
pub mod descriptor;
pub mod engine;
pub mod matmul;
pub mod plan;
pub mod pricing;
pub mod qplan;
pub mod serve;
pub mod stage;

pub use attn::{
    attention_key, AttentionMask, AttentionPlan, AttnCacheStats, AttnPlanCache, SddmmPath,
    SddmmPlan,
};
pub use descriptor::{DType, Epilogue, MatmulDescriptor};
pub use engine::Engine;
pub use matmul::{MatmulPlan, PlanError};
pub use plan::{BandPlan, FormatPlan, GemmPlan, SpmmPlan};
pub use qplan::QuantSpmmPlan;
pub use serve::{
    CacheStats, FaultConfig, FaultPlan, FaultTrips, HealthReport, PlanBuildError, PlanCache,
    PlanKey, RetryPolicy, ServeConfig, ServeError, ServeReport, Server,
};

pub use venom_core::{SpmmOptions, TileConfig};
pub use venom_format::{MatmulFormat, QuantVnmMatrix, SparseKernel, VnmConfig, VnmMatrix};
pub use venom_quant::Calibration;
pub use venom_sim::{DeviceConfig, KernelTiming, Regime, Roofline};
