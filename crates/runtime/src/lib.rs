//! The inference engine: plan-once/run-many execution over the Spatha
//! kernels (the cuSPARSELt-style plan/execute split the paper benchmarks
//! against, §7.2).
//!
//! The per-call [`venom_core::spmm`] entry point redoes tile-config
//! selection, cost-model pricing and operand staging on every invocation —
//! the right shape for one-shot benchmarks, the wrong one for serving,
//! where the compressed weights are static across every forward pass. An
//! [`Engine`] builds *plans* instead:
//!
//! * [`SpmmPlan`] captures, at build time, the autotuned [`TileConfig`]
//!   for the `(weight, b_cols)` shape, the weight's f32-staged operands
//!   condensed into a per-row `(value, B-row)` stream in the kernel's
//!   exact accumulation order, and the priced launch. `plan.run(&b)` then
//!   executes with zero per-call setup.
//! * [`GemmPlan`] is the dense analogue for the unpruned layers: the
//!   weight is decoded and zero-compacted once, and every run replays
//!   [`venom_tensor::gemm::gemm_parallel`]'s accumulation chain.
//!
//! Every plan execution is **bit-identical** to the one-shot path it
//! amortises: the stream stores each row's nonzeros in the same ascending
//! `(group, slot)` order the kernel (and `spmm_ref`) accumulate in, with
//! the same exactly-decoded f32 products, so the f32 additions happen in
//! the same order with the same values. Batched runs concatenate requests
//! along the output-column dimension; columns are independent in every
//! path, so batching changes nothing numerically either.
//!
//! Per-call scratch (the staged RHS, intermediate products) leases from a
//! per-thread [`arena`], so steady-state serving performs no staging
//! allocations beyond the returned output matrices.

pub mod arena;
pub mod engine;
pub mod plan;
pub mod stage;

pub use engine::Engine;
pub use plan::{GemmPlan, SpmmPlan};

pub use venom_core::{SpmmOptions, TileConfig};
pub use venom_format::{VnmConfig, VnmMatrix};
pub use venom_sim::{DeviceConfig, KernelTiming};
