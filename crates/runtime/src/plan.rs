//! Execution plans: the condensed instruction streams and their run paths.
//!
//! A plan's stream stores, for every output row, the row's nonzero
//! operands as `(f32 value, source B row)` pairs in the exact order the
//! one-shot path accumulates them — ascending `(K group, slot)` for the
//! V:N:M kernel, ascending `k` for the dense GEMM — with explicit zeros
//! dropped exactly where the one-shot paths skip them. Replaying the
//! stream therefore reproduces every f32 accumulation chain bit-for-bit
//! while touching each operand once, at full output width, instead of
//! through 8-column instruction fragments rebuilt on every call.

use crate::arena;
use crate::stage;
use rayon::prelude::*;
use venom_core::{SpmmOptions, TileConfig};
use venom_fp16::Half;
use venom_format::VnmMatrix;
use venom_sim::pipeline::KernelCounts;
use venom_sim::{DeviceConfig, KernelTiming};
use venom_tensor::Matrix;

/// Row height of one parallel task; matches `gemm_parallel`'s banding so
/// task granularity is comparable across the dense and sparse paths.
const BAND_ROWS: usize = 16;

/// The shared condensed stream: CSR-like over *staged* f32 values, with
/// `srcs[i]` naming the RHS row each value multiplies.
#[derive(Clone, Debug)]
pub(crate) struct Stream {
    rows: usize,
    k: usize,
    row_ptr: Vec<u32>,
    vals: Vec<f32>,
    srcs: Vec<u32>,
}

impl Stream {
    /// Builds the stream of a V:N:M weight in kernel accumulation order.
    fn from_vnm(a: &VnmMatrix) -> Self {
        let (rows, k) = a.shape();
        let cfg = a.config();
        let k_groups = a.k_groups();
        let a_f32 = venom_fp16::slice::decode_f32_vec(a.values());
        let m_indices = a.m_indices();

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut vals = Vec::new();
        let mut srcs = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            let blk = r / cfg.v;
            for g in 0..k_groups {
                let sel = a.selected_b_rows(blk, g);
                for s in 0..cfg.n {
                    let slot = (r * k_groups + g) * cfg.n + s;
                    let vf = a_f32[slot];
                    if vf != 0.0 {
                        vals.push(vf);
                        srcs.push(sel[m_indices[slot] as usize] as u32);
                    }
                }
            }
            row_ptr.push(vals.len() as u32);
        }
        Stream { rows, k, row_ptr, vals, srcs }
    }

    /// Builds the stream of a dense half weight in `gemm_ref` order
    /// (ascending `k`, explicit zeros dropped where `gemm_ref` skips them).
    fn from_dense(w: &Matrix<Half>) -> Self {
        let (rows, k) = (w.rows(), w.cols());
        let table = venom_fp16::f16_to_f32_table();
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut vals = Vec::new();
        let mut srcs = Vec::new();
        row_ptr.push(0u32);
        for r in 0..rows {
            for (kk, &h) in w.row(r).iter().enumerate() {
                if !h.is_zero() {
                    vals.push(table[h.to_bits() as usize]);
                    srcs.push(kk as u32);
                }
            }
            row_ptr.push(vals.len() as u32);
        }
        Stream { rows, k, row_ptr, vals, srcs }
    }

    /// Stored operand count.
    fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `C = A * B` over a staged RHS (`k x b_cols`, row-major f32) into
    /// `out` (`rows x b_cols`, zero-initialised). Output rows are disjoint
    /// across parallel bands and each element accumulates sequentially in
    /// stream order, so the result is bit-identical regardless of the
    /// worker count.
    ///
    /// The inner loop walks four stream entries at a time, reading and
    /// writing the output row once per quad. The per-element sum is
    /// evaluated left to right (`((o + v0*b0) + v1*b1) + ...`), which is
    /// exactly the accumulation chain of one-entry-at-a-time iteration —
    /// the unroll changes traffic, not bits.
    fn run_into(&self, b_f32: &[f32], b_cols: usize, out: &mut [f32]) {
        assert_eq!(b_f32.len(), self.k * b_cols, "staged RHS size mismatch");
        assert_eq!(out.len(), self.rows * b_cols, "output size mismatch");
        out.par_chunks_mut(BAND_ROWS * b_cols).enumerate().for_each(|(band, chunk)| {
            let row0 = band * BAND_ROWS;
            for (i, orow) in chunk.chunks_mut(b_cols).enumerate() {
                let r = row0 + i;
                let lo = self.row_ptr[r] as usize;
                let hi = self.row_ptr[r + 1] as usize;
                let mut s = lo;
                while s + 4 <= hi {
                    let v = &self.vals[s..s + 4];
                    let b0 = &b_f32[self.srcs[s] as usize * b_cols..][..b_cols];
                    let b1 = &b_f32[self.srcs[s + 1] as usize * b_cols..][..b_cols];
                    let b2 = &b_f32[self.srcs[s + 2] as usize * b_cols..][..b_cols];
                    let b3 = &b_f32[self.srcs[s + 3] as usize * b_cols..][..b_cols];
                    for (j, o) in orow.iter_mut().enumerate() {
                        *o = *o + v[0] * b0[j] + v[1] * b1[j] + v[2] * b2[j] + v[3] * b3[j];
                    }
                    s += 4;
                }
                for (vf, src) in self.vals[s..hi].iter().zip(&self.srcs[s..hi]) {
                    let brow = &b_f32[*src as usize * b_cols..][..b_cols];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += vf * bv;
                    }
                }
            }
        });
    }

    /// [`Self::run_into`] with an owned result matrix.
    fn run(&self, b_f32: &[f32], b_cols: usize) -> Matrix<f32> {
        let mut out = vec![0.0f32; self.rows * b_cols];
        self.run_into(b_f32, b_cols, &mut out);
        Matrix::from_vec(self.rows, b_cols, out)
    }

    /// The fused layer path: stages `x` (`tokens x k` f32) through f16
    /// rounding into the kernel orientation, multiplies, and returns
    /// `(A * x^T)^T + bias` (`tokens x rows`) — element-for-element the
    /// chain `transpose(A * x.to_half().transpose()) + bias` of the
    /// per-call layer forward, in two fused passes.
    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(x.cols(), self.k, "input features mismatch");
        let mut staged = arena::lease(x.len());
        stage::stage_activations_t_into(x, &mut staged);
        let y = self.run_linear_staged(&staged, x.rows(), bias);
        arena::release(staged);
        y
    }

    /// [`Self::run_linear`] over an already-staged RHS (shared by sibling
    /// plans of one layer, e.g. Q/K/V over the same activations).
    fn run_linear_staged(&self, b_f32: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(bias.len(), self.rows, "bias must match out_features");
        let mut c = arena::lease(self.rows * tokens);
        self.run_into(b_f32, tokens, &mut c);
        // Tiled transpose+bias epilogue: 32x32 blocks keep both the
        // strided reads from `c` and the writes to `y` inside the cache
        // (a row-by-row transpose touches a fresh cache line per element).
        const TILE: usize = 32;
        let mut y = vec![0.0f32; tokens * self.rows];
        for t0 in (0..tokens).step_by(TILE) {
            let t1 = (t0 + TILE).min(tokens);
            for r0 in (0..self.rows).step_by(TILE) {
                let r1 = (r0 + TILE).min(self.rows);
                for t in t0..t1 {
                    let yrow = &mut y[t * self.rows..][r0..r1];
                    for (r, o) in (r0..r1).zip(yrow.iter_mut()) {
                        *o = c[r * tokens + t] + bias[r];
                    }
                }
            }
        }
        arena::release(c);
        Matrix::from_vec(tokens, self.rows, y)
    }
}

/// A plan for `C = A * B` with a static V:N:M weight `A` — built once,
/// run on every request.
#[derive(Clone, Debug)]
pub struct SpmmPlan {
    weight: VnmMatrix,
    stream: Stream,
    dev: DeviceConfig,
    b_cols_bound: usize,
    /// Autotuned instantiation at the planned bound; `None` when `V` is
    /// below the kernel's 16-row fragment contract (the stream executes
    /// any `V`; only the GPU pricing needs a launchable tile).
    tile: Option<TileConfig>,
    timing: Option<KernelTiming>,
    counts: Option<KernelCounts>,
}

impl SpmmPlan {
    /// Builds a plan; prefer [`crate::Engine::plan_spmm`].
    pub(crate) fn build(
        a: &VnmMatrix,
        b_cols_bound: usize,
        opts: &SpmmOptions,
        dev: &DeviceConfig,
    ) -> Self {
        let stream = Stream::from_vnm(a);
        let v = a.config().v;
        let (tile, timing, counts) = if v >= 16 && v.is_multiple_of(16) {
            let tile = opts
                .tile
                .unwrap_or_else(|| venom_core::autotune(a, b_cols_bound, opts, dev).0);
            let counts = venom_core::build_counts(a, b_cols_bound, &tile, opts);
            let timing = venom_sim::pipeline::simulate(dev, &counts).unwrap_or_else(|e| {
                panic!("planned configuration {tile} cannot launch on {}: {e:?}", dev.name)
            });
            (Some(tile), Some(timing), Some(counts))
        } else {
            (None, None, None)
        };
        SpmmPlan { weight: a.clone(), stream, dev: dev.clone(), b_cols_bound, tile, timing, counts }
    }

    /// The compressed weight the plan executes.
    pub fn weight(&self) -> &VnmMatrix {
        &self.weight
    }

    /// Logical weight shape `(rows, k)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Stored nonzeros in the condensed stream.
    pub fn nnz(&self) -> usize {
        self.stream.nnz()
    }

    /// The output-column bound the tile was tuned (and priced) for. Runs
    /// beyond the bound stay exact; only the captured pricing assumes it.
    pub fn b_cols_bound(&self) -> usize {
        self.b_cols_bound
    }

    /// The autotuned template instantiation (`None` for V < 16 patterns,
    /// which only the functional stream supports).
    pub fn tile(&self) -> Option<TileConfig> {
        self.tile
    }

    /// Simulated timing of one dispatch at the planned bound.
    pub fn timing(&self) -> Option<&KernelTiming> {
        self.timing.as_ref()
    }

    /// Priced resource counts at the planned bound.
    pub fn counts(&self) -> Option<&KernelCounts> {
        self.counts.as_ref()
    }

    /// Prices a dispatch at a different width with the planned tile.
    pub fn price(&self, b_cols: usize, opts: &SpmmOptions) -> Option<KernelTiming> {
        let tile = self.tile?;
        let (r, k) = self.weight.shape();
        let counts =
            venom_core::build_counts_shape(r, k, b_cols, self.weight.config(), &tile, opts);
        venom_sim::pipeline::simulate(&self.dev, &counts).ok()
    }

    /// Executes `C = A * B`; bit-identical to
    /// `venom_core::spmm(&a, &b, ..).c` (and to `a.spmm_ref(&b)`).
    ///
    /// # Panics
    /// Panics if `B` has a row count different from the planned K.
    pub fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        assert_eq!(b.rows(), self.stream.k, "B must have K = {} rows", self.stream.k);
        let mut staged = arena::lease(b.len());
        stage::decode_rhs_into(b, &mut staged);
        let c = self.stream.run(&staged, b.cols());
        arena::release(staged);
        c
    }

    /// One dispatch over many requests: concatenates the operands along
    /// the output-column dimension, multiplies once, and splits the
    /// result. Bit-identical to running each operand separately (columns
    /// are independent in every path).
    ///
    /// # Panics
    /// Panics if any operand has a row count different from the planned K.
    pub fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        if bs.is_empty() {
            return Vec::new();
        }
        let k = self.stream.k;
        let total: usize = bs.iter().map(|b| b.cols()).sum();
        let mut staged = arena::lease(k * total);
        let mut col0 = 0usize;
        for b in bs {
            assert_eq!(b.rows(), k, "B must have K = {k} rows");
            let cols = b.cols();
            for r in 0..k {
                venom_fp16::slice::decode_f32_into(
                    b.row(r),
                    &mut staged[r * total + col0..r * total + col0 + cols],
                );
            }
            col0 += cols;
        }
        let c = self.stream.run(&staged, total);
        arena::release(staged);

        let mut out = Vec::with_capacity(bs.len());
        let rows = self.stream.rows;
        let mut col0 = 0usize;
        for b in bs {
            let cols = b.cols();
            let mut part = vec![0.0f32; rows * cols];
            for r in 0..rows {
                part[r * cols..(r + 1) * cols]
                    .copy_from_slice(&c.as_slice()[r * total + col0..r * total + col0 + cols]);
            }
            out.push(Matrix::from_vec(rows, cols, part));
            col0 += cols;
        }
        out
    }

    /// The fused layer forward `y = x W^T + b`: stages `x` through f16
    /// rounding into the kernel orientation, runs the stream, and returns
    /// the transposed-plus-bias output — bit-identical to the per-call
    /// chain `spmm(&w, &x.to_half().transpose(), ..).c.transpose()` with
    /// the bias added row-wise afterwards.
    ///
    /// # Panics
    /// Panics on feature or bias length mismatch.
    pub fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        self.stream.run_linear(x, bias)
    }

    /// [`Self::run_linear`] over a pre-staged operand (see
    /// [`crate::stage::stage_activations_t`]); `tokens` is the activation
    /// row count the buffer was staged from.
    pub fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(staged.len(), self.stream.k * tokens, "staged operand size mismatch");
        self.stream.run_linear_staged(staged, tokens, bias)
    }
}

/// A plan for a dense half weight — the unpruned layers of a partially
/// sparsified model go through the same plan/execute seam.
#[derive(Clone, Debug)]
pub struct GemmPlan {
    weight: Matrix<Half>,
    stream: Stream,
}

impl GemmPlan {
    /// Plans a dense weight. Needs no device: the dense functional path
    /// has a single implementation ([`Engine::plan_gemm`] exists for
    /// symmetry).
    ///
    /// [`Engine::plan_gemm`]: crate::Engine::plan_gemm
    pub fn new(w: &Matrix<Half>) -> Self {
        GemmPlan { weight: w.clone(), stream: Stream::from_dense(w) }
    }

    /// The dense weight the plan executes.
    pub fn weight(&self) -> &Matrix<Half> {
        &self.weight
    }

    /// Logical weight shape `(rows, k)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.weight.rows(), self.weight.cols())
    }

    /// Executes `C = W * B`; bit-identical to
    /// `venom_tensor::gemm::gemm_parallel(&w, &b)` (and `gemm_ref`).
    ///
    /// # Panics
    /// Panics if `B` has a row count different from the weight columns.
    pub fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        assert_eq!(b.rows(), self.stream.k, "B must have K = {} rows", self.stream.k);
        let mut staged = arena::lease(b.len());
        stage::decode_rhs_into(b, &mut staged);
        let c = self.stream.run(&staged, b.cols());
        arena::release(staged);
        c
    }

    /// The fused layer forward `y = x W^T + b`; bit-identical to the
    /// per-call chain through `gemm_parallel` (see
    /// [`SpmmPlan::run_linear`]).
    ///
    /// # Panics
    /// Panics on feature or bias length mismatch.
    pub fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        self.stream.run_linear(x, bias)
    }

    /// [`Self::run_linear`] over a pre-staged operand.
    pub fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(staged.len(), self.stream.k * tokens, "staged operand size mismatch");
        self.stream.run_linear_staged(staged, tokens, bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venom_core::spmm;
    use venom_format::VnmConfig;
    use venom_pruner::magnitude;
    use venom_tensor::{gemm, random};

    fn dev() -> DeviceConfig {
        DeviceConfig::rtx3090()
    }

    fn vnm_fixture(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> VnmMatrix {
        let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
        let mask = magnitude::prune_vnm(&w, cfg);
        VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg)
    }

    #[test]
    fn plan_run_is_bit_identical_to_one_shot_spmm() {
        let cfg = VnmConfig::new(64, 2, 10);
        let a = vnm_fixture(70, 93, cfg, 1);
        let b = random::normal_matrix(93, 37, 0.0, 1.0, 2).to_half();
        let plan = SpmmPlan::build(&a, 64, &SpmmOptions::default(), &dev());
        let got = plan.run(&b);
        let want = spmm(&a, &b, &SpmmOptions::default(), &dev()).c;
        assert_eq!(got, want);
        assert_eq!(got, a.spmm_ref(&b));
    }

    #[test]
    fn plan_supports_sub_fragment_v() {
        // V = 8 has no launchable tile (the kernel needs 16-row
        // fragments) but the functional stream executes it exactly.
        let cfg = VnmConfig::new(8, 2, 8);
        let a = vnm_fixture(24, 40, cfg, 3);
        let b = random::normal_matrix(40, 9, 0.0, 1.0, 4).to_half();
        let plan = SpmmPlan::build(&a, 16, &SpmmOptions::default(), &dev());
        assert!(plan.tile().is_none());
        assert_eq!(plan.run(&b), a.spmm_ref(&b));
    }

    #[test]
    fn batched_run_matches_separate_runs() {
        let cfg = VnmConfig::new(32, 2, 8);
        let a = vnm_fixture(64, 64, cfg, 5);
        let plan = SpmmPlan::build(&a, 48, &SpmmOptions::default(), &dev());
        let b1 = random::normal_matrix(64, 11, 0.0, 1.0, 6).to_half();
        let b2 = random::normal_matrix(64, 24, 0.0, 1.0, 7).to_half();
        let b3 = random::normal_matrix(64, 1, 0.0, 1.0, 8).to_half();
        let batch = plan.run_batch(&[&b1, &b2, &b3]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], plan.run(&b1));
        assert_eq!(batch[1], plan.run(&b2));
        assert_eq!(batch[2], plan.run(&b3));
    }

    #[test]
    fn fused_linear_matches_per_call_chain() {
        let cfg = VnmConfig::new(16, 2, 8);
        let a = vnm_fixture(32, 48, cfg, 9);
        let bias: Vec<f32> = (0..32).map(|i| i as f32 * 0.25 - 4.0).collect();
        let x = random::activation_matrix(19, 48, 10);
        let plan = SpmmPlan::build(&a, 32, &SpmmOptions::default(), &dev());
        let got = plan.run_linear(&x, &bias);
        // The per-call layer chain.
        let xt = x.to_half().transpose();
        let mut want = spmm(&a, &xt, &SpmmOptions::default(), &dev()).c.transpose();
        for r in 0..want.rows() {
            for (c, bv) in bias.iter().enumerate() {
                want.set(r, c, want.get(r, c) + bv);
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn gemm_plan_matches_gemm_parallel() {
        let w = random::normal_matrix(33, 29, 0.0, 1.0, 11).to_half();
        let b = random::normal_matrix(29, 21, 0.0, 1.0, 12).to_half();
        let plan = GemmPlan::new(&w);
        assert_eq!(plan.run(&b), gemm::gemm_parallel(&w, &b));
    }

    #[test]
    fn gemm_plan_fused_linear_matches_per_call_chain() {
        let w = random::normal_matrix(24, 40, 0.0, 1.0, 13).to_half();
        let bias: Vec<f32> = (0..24).map(|i| (i as f32).sin()).collect();
        let x = random::activation_matrix(15, 40, 14);
        let plan = GemmPlan::new(&w);
        let got = plan.run_linear(&x, &bias);
        let xt = x.to_half().transpose();
        let mut want = gemm::gemm_parallel(&w, &xt).transpose();
        for r in 0..want.rows() {
            for (c, bv) in bias.iter().enumerate() {
                want.set(r, c, want.get(r, c) + bv);
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn shared_staging_matches_unshared() {
        let cfg = VnmConfig::new(16, 2, 8);
        let a = vnm_fixture(32, 32, cfg, 15);
        let plan = SpmmPlan::build(&a, 16, &SpmmOptions::default(), &dev());
        let x = random::activation_matrix(9, 32, 16);
        let bias = vec![0.5f32; 32];
        let staged = stage::stage_activations_t(&x);
        let got = plan.run_linear_staged(&staged, x.rows(), &bias);
        assert_eq!(got, plan.run_linear(&x, &bias));
    }

    #[test]
    fn repeated_runs_are_stable() {
        let cfg = VnmConfig::new(32, 2, 16);
        let a = vnm_fixture(32, 64, cfg, 17);
        let b = random::normal_matrix(64, 13, 0.0, 1.0, 18).to_half();
        let plan = SpmmPlan::build(&a, 16, &SpmmOptions::default(), &dev());
        let first = plan.run(&b);
        for _ in 0..3 {
            assert_eq!(plan.run(&b), first);
        }
    }

    #[test]
    #[should_panic(expected = "B must have K")]
    fn run_rejects_shape_mismatch() {
        let cfg = VnmConfig::new(16, 2, 8);
        let a = vnm_fixture(16, 32, cfg, 19);
        let plan = SpmmPlan::build(&a, 8, &SpmmOptions::default(), &dev());
        let _ = plan.run(&Matrix::<Half>::zeros(16, 4));
    }
}
