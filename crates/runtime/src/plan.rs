//! Execution plans: the condensed instruction streams and their run paths.
//!
//! A plan's stream stores, for every output row, the row's nonzero
//! operands as `(f32 value, source B row)` pairs in the exact order the
//! format's one-shot path accumulates them — ascending `(K group, slot)`
//! for the V:N:M kernel, ascending `k` for the dense GEMM, stored order
//! for CSR/CVSE/Blocked-ELL — with explicit zeros dropped exactly where
//! the one-shot paths skip them (see
//! [`venom_format::SparseKernel::for_each_operand`]). Replaying the
//! stream therefore reproduces every f32 accumulation chain bit-for-bit
//! while touching each operand once, at full output width, instead of
//! through per-call staging rebuilt on every dispatch.
//!
//! Four plan types share the execution surface (`StreamExec`) and
//! implement the format-erased [`MatmulPlan`] trait: [`SpmmPlan`]
//! (V:N:M, autotuned and priced on the Spatha cost model), [`GemmPlan`]
//! (dense, priced on the cuBLAS model), [`FormatPlan`] (any other
//! [`SparseKernel`], priced by its format's baseline model), and
//! [`BandPlan`] (the bandwidth-optimized non-mma V:N:M path: a narrow
//! f16-bits/u16-index stream executed with the FlashSparse-style
//! register-panel accumulator, priced on the CUDA-core roofline).

use crate::arena;
use crate::descriptor::MatmulDescriptor;
use crate::matmul::{MatmulPlan, PlanError};
use crate::stage;
use rayon::prelude::*;
use std::sync::Arc;
use venom_core::{SpmmOptions, TileConfig};
use venom_format::{MatmulFormat, SparseKernel, VnmMatrix};
use venom_fp16::Half;
use venom_sim::pipeline::KernelCounts;
use venom_sim::{DeviceConfig, KernelTiming};
use venom_tensor::Matrix;

/// Row height of one parallel task; matches `gemm_parallel`'s banding so
/// task granularity is comparable across the dense and sparse paths.
const BAND_ROWS: usize = 16;

/// The shared execution surface over a condensed operand stream.
///
/// Any backing store that can replay `C = A * B` into a zero-initialised
/// f32 buffer ([`Self::run_into`]) inherits the staged, batched and
/// fused-linear dispatch paths — [`Stream`] (the f32 quad-unrolled
/// replay) and `BandStream` (the narrow bandwidth-optimized replay)
/// both execute through these defaults, so the plan types differ only in
/// their inner loop and pricing, never in staging behaviour.
pub(crate) trait StreamExec {
    /// Output rows.
    fn rows(&self) -> usize;

    /// Reduction depth K.
    fn k(&self) -> usize;

    /// Kernel label phase profiling records this stream under (see
    /// [`venom_obs::profile`]).
    fn profile_kernel(&self) -> &'static str;

    /// Phase name of the inner compute loop — `"mma"` for the f32 quad
    /// replay standing in for the `mma.sp` pipeline, `"band"` for the
    /// narrow bandwidth-optimized replay.
    fn profile_phase(&self) -> &'static str;

    /// Resident bytes of the condensed stream — compulsory operand
    /// traffic the compute phase reads exactly once per dispatch.
    fn stream_bytes(&self) -> u64;

    /// `C = A * B` over a staged RHS (`k x b_cols`, row-major f32) into
    /// `out` (`rows x b_cols`, zero-initialised). Output rows are
    /// disjoint across parallel bands and each element accumulates
    /// sequentially in stream order, so the result is bit-identical
    /// regardless of the worker count.
    fn run_into(&self, b_f32: &[f32], b_cols: usize, out: &mut [f32]);

    /// [`Self::run_into`] with an owned result matrix.
    fn run(&self, b_f32: &[f32], b_cols: usize) -> Matrix<f32> {
        let mut out = vec![0.0f32; self.rows() * b_cols];
        let timer = venom_obs::profile::PhaseTimer::start();
        self.run_into(b_f32, b_cols, &mut out);
        timer.stop(
            self.profile_kernel(),
            self.profile_phase(),
            self.stream_bytes() + (out.len() * 4) as u64,
        );
        Matrix::from_vec(self.rows(), b_cols, out)
    }

    /// `C = A * B` over a half RHS, staged through the arena.
    fn run_half(&self, b: &Matrix<Half>) -> Matrix<f32> {
        assert_eq!(b.rows(), self.k(), "B must have K = {} rows", self.k());
        let mut staged = arena::lease(b.len());
        let timer = venom_obs::profile::PhaseTimer::start();
        stage::decode_rhs_into(b, &mut staged);
        timer.stop(self.profile_kernel(), "stage", (b.len() * 2) as u64);
        let c = self.run(&staged, b.cols());
        arena::release(staged);
        c
    }

    /// One dispatch over many requests: concatenates the operands along
    /// the output-column dimension, multiplies once, and splits the
    /// result. Bit-identical to running each operand separately (columns
    /// are independent in every path).
    fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        if bs.is_empty() {
            return Vec::new();
        }
        let k = self.k();
        let total: usize = bs.iter().map(|b| b.cols()).sum();
        let mut staged = arena::lease(k * total);
        let timer = venom_obs::profile::PhaseTimer::start();
        let mut col0 = 0usize;
        for b in bs {
            assert_eq!(b.rows(), k, "B must have K = {k} rows");
            let cols = b.cols();
            for r in 0..k {
                venom_fp16::slice::decode_f32_into(
                    b.row(r),
                    &mut staged[r * total + col0..r * total + col0 + cols],
                );
            }
            col0 += cols;
        }
        timer.stop(self.profile_kernel(), "stage", (k * total * 2) as u64);
        let c = self.run(&staged, total);
        arena::release(staged);

        let mut out = Vec::with_capacity(bs.len());
        let rows = self.rows();
        let mut col0 = 0usize;
        for b in bs {
            let cols = b.cols();
            let mut part = vec![0.0f32; rows * cols];
            for r in 0..rows {
                part[r * cols..(r + 1) * cols]
                    .copy_from_slice(&c.as_slice()[r * total + col0..r * total + col0 + cols]);
            }
            out.push(Matrix::from_vec(rows, cols, part));
            col0 += cols;
        }
        out
    }

    /// The fused layer path: stages `x` (`tokens x k` f32) through f16
    /// rounding into the kernel orientation, multiplies, and returns
    /// `(A * x^T)^T + bias` (`tokens x rows`) — element-for-element the
    /// chain `transpose(A * x.to_half().transpose()) + bias` of the
    /// per-call layer forward, in two fused passes.
    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(x.cols(), self.k(), "input features mismatch");
        let mut staged = arena::lease(x.len());
        let timer = venom_obs::profile::PhaseTimer::start();
        stage::stage_activations_t_into(x, &mut staged);
        timer.stop(self.profile_kernel(), "stage", (x.len() * 4) as u64);
        let y = self.run_linear_staged(&staged, x.rows(), bias);
        arena::release(staged);
        y
    }

    /// [`Self::run_linear`] over an already-staged RHS (shared by sibling
    /// plans of one layer, e.g. Q/K/V over the same activations).
    fn run_linear_staged(&self, b_f32: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        let rows = self.rows();
        assert_eq!(bias.len(), rows, "bias must match out_features");
        let mut c = arena::lease(rows * tokens);
        let timer = venom_obs::profile::PhaseTimer::start();
        self.run_into(b_f32, tokens, &mut c);
        timer.stop(
            self.profile_kernel(),
            self.profile_phase(),
            self.stream_bytes() + (rows * tokens * 4) as u64,
        );
        // Tiled transpose+bias epilogue: 32x32 blocks keep both the
        // strided reads from `c` and the writes to `y` inside the cache
        // (a row-by-row transpose touches a fresh cache line per element).
        const TILE: usize = 32;
        let timer = venom_obs::profile::PhaseTimer::start();
        let mut y = vec![0.0f32; tokens * rows];
        for t0 in (0..tokens).step_by(TILE) {
            let t1 = (t0 + TILE).min(tokens);
            for r0 in (0..rows).step_by(TILE) {
                let r1 = (r0 + TILE).min(rows);
                for t in t0..t1 {
                    let yrow = &mut y[t * rows..][r0..r1];
                    for (r, o) in (r0..r1).zip(yrow.iter_mut()) {
                        *o = c[r * tokens + t] + bias[r];
                    }
                }
            }
        }
        timer.stop(self.profile_kernel(), "epilogue", (y.len() * 4) as u64);
        arena::release(c);
        Matrix::from_vec(tokens, rows, y)
    }
}

/// The shared condensed stream: CSR-like over *staged* f32 values, with
/// `srcs[i]` naming the RHS row each value multiplies.
#[derive(Clone, Debug)]
pub(crate) struct Stream {
    rows: usize,
    k: usize,
    row_ptr: Vec<u32>,
    vals: Vec<f32>,
    srcs: Vec<u32>,
}

impl Stream {
    /// Condenses any [`SparseKernel`] into its accumulation-order stream.
    ///
    /// The kernel may emit rows interleaved (band-major formats); two
    /// visitor passes bucket the operands per row while preserving each
    /// row's emission order — which the trait contract pins to the
    /// format's `spmm_ref` accumulation order.
    fn from_kernel(kernel: &dyn SparseKernel) -> Self {
        let (rows, k) = kernel.shape();
        let mut row_ptr = vec![0u32; rows + 1];
        kernel.for_each_operand(&mut |r, _, _| row_ptr[r + 1] += 1);
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = row_ptr[rows] as usize;
        let mut vals = vec![0.0f32; nnz];
        let mut srcs = vec![0u32; nnz];
        let mut cursor: Vec<u32> = row_ptr[..rows].to_vec();
        kernel.for_each_operand(&mut |r, v, s| {
            let i = cursor[r] as usize;
            vals[i] = v;
            srcs[i] = s as u32;
            cursor[r] += 1;
        });
        Stream {
            rows,
            k,
            row_ptr,
            vals,
            srcs,
        }
    }

    /// Stored operand count.
    fn nnz(&self) -> usize {
        self.vals.len()
    }
}

impl StreamExec for Stream {
    fn rows(&self) -> usize {
        self.rows
    }

    fn k(&self) -> usize {
        self.k
    }

    fn profile_kernel(&self) -> &'static str {
        "spmm[mma]"
    }

    fn profile_phase(&self) -> &'static str {
        "mma"
    }

    fn stream_bytes(&self) -> u64 {
        // f32 value + u32 source per operand, plus the row pointers.
        (self.vals.len() * 4 + self.srcs.len() * 4 + self.row_ptr.len() * 4) as u64
    }

    /// The inner loop walks four stream entries at a time, reading and
    /// writing the output row once per quad. The per-element sum is
    /// evaluated left to right (`((o + v0*b0) + v1*b1) + ...`), which is
    /// exactly the accumulation chain of one-entry-at-a-time iteration —
    /// the unroll changes traffic, not bits.
    fn run_into(&self, b_f32: &[f32], b_cols: usize, out: &mut [f32]) {
        assert_eq!(b_f32.len(), self.k * b_cols, "staged RHS size mismatch");
        assert_eq!(out.len(), self.rows * b_cols, "output size mismatch");
        out.par_chunks_mut(BAND_ROWS * b_cols)
            .enumerate()
            .for_each(|(band, chunk)| {
                let row0 = band * BAND_ROWS;
                for (i, orow) in chunk.chunks_mut(b_cols).enumerate() {
                    let r = row0 + i;
                    let lo = self.row_ptr[r] as usize;
                    let hi = self.row_ptr[r + 1] as usize;
                    let mut s = lo;
                    while s + 4 <= hi {
                        let v = &self.vals[s..s + 4];
                        let b0 = &b_f32[self.srcs[s] as usize * b_cols..][..b_cols];
                        let b1 = &b_f32[self.srcs[s + 1] as usize * b_cols..][..b_cols];
                        let b2 = &b_f32[self.srcs[s + 2] as usize * b_cols..][..b_cols];
                        let b3 = &b_f32[self.srcs[s + 3] as usize * b_cols..][..b_cols];
                        for (j, o) in orow.iter_mut().enumerate() {
                            *o = *o + v[0] * b0[j] + v[1] * b1[j] + v[2] * b2[j] + v[3] * b3[j];
                        }
                        s += 4;
                    }
                    for (vf, src) in self.vals[s..hi].iter().zip(&self.srcs[s..hi]) {
                        let brow = &b_f32[*src as usize * b_cols..][..b_cols];
                        for (o, &bv) in orow.iter_mut().zip(brow) {
                            *o += vf * bv;
                        }
                    }
                }
            });
    }
}

/// The bandwidth-optimized condensed stream: f16 *bit patterns* and
/// narrow `u16` source indices — 4 bytes per stored nonzero against the
/// f32 stream's 8 — replayed with a register-panel accumulator instead
/// of the read-modify-write quad loop. On shapes left of the ridge point
/// every byte is wall time, so the narrow stream and single-touch output
/// writes are the speedup; values decode through the exact f16→f32 LUT,
/// keeping every accumulation chain bit-identical to `spmm_ref`.
#[derive(Clone, Debug)]
pub(crate) struct BandStream {
    rows: usize,
    k: usize,
    row_ptr: Vec<u32>,
    /// f16 bit patterns in `spmm_ref` accumulation order.
    vals: Vec<u16>,
    /// Source B row per value; `K` must fit in 16 bits.
    srcs: Vec<u16>,
}

impl BandStream {
    /// Condenses a V:N:M weight into the narrow stream, or `None` when
    /// `K` exceeds the 16-bit source-index range.
    fn from_vnm(a: &VnmMatrix) -> Option<Self> {
        let (rows, k) = a.shape();
        if k > u16::MAX as usize + 1 {
            return None;
        }
        let mut row_ptr = vec![0u32; rows + 1];
        a.for_each_nonzero(|r, _, _| row_ptr[r + 1] += 1);
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = row_ptr[rows] as usize;
        let mut vals = vec![0u16; nnz];
        let mut srcs = vec![0u16; nnz];
        let mut cursor: Vec<u32> = row_ptr[..rows].to_vec();
        a.for_each_nonzero(|r, s, v| {
            let i = cursor[r] as usize;
            vals[i] = v.to_bits();
            srcs[i] = s as u16;
            cursor[r] += 1;
        });
        Some(BandStream {
            rows,
            k,
            row_ptr,
            vals,
            srcs,
        })
    }

    /// Stored operand count.
    fn nnz(&self) -> usize {
        self.vals.len()
    }
}

impl StreamExec for BandStream {
    fn rows(&self) -> usize {
        self.rows
    }

    fn k(&self) -> usize {
        self.k
    }

    fn profile_kernel(&self) -> &'static str {
        "spmm[band]"
    }

    fn profile_phase(&self) -> &'static str {
        "band"
    }

    fn stream_bytes(&self) -> u64 {
        // f16 bits + u16 source per operand, plus the row pointers.
        (self.vals.len() * 2 + self.srcs.len() * 2 + self.row_ptr.len() * 4) as u64
    }

    /// The inner loop is the FlashSparse swap in register form: per
    /// output row, an 8-wide panel of columns accumulates in registers
    /// while the whole row's stream replays over it — each stored
    /// nonzero costs one LUT load and one narrow contiguous `B` segment
    /// read, and the output is written exactly once per panel. Per
    /// `(row, column)` the sum is the same left-to-right chain from
    /// `0.0` as `spmm_ref`'s, so the panelling changes traffic, not
    /// bits.
    fn run_into(&self, b_f32: &[f32], b_cols: usize, out: &mut [f32]) {
        assert_eq!(b_f32.len(), self.k * b_cols, "staged RHS size mismatch");
        assert_eq!(out.len(), self.rows * b_cols, "output size mismatch");
        const PANEL: usize = venom_core::SWAP_PANEL;
        let lut = venom_fp16::f16_to_f32_table();
        out.par_chunks_mut(BAND_ROWS * b_cols)
            .enumerate()
            .for_each(|(band, chunk)| {
                let row0 = band * BAND_ROWS;
                for (i, orow) in chunk.chunks_mut(b_cols).enumerate() {
                    let r = row0 + i;
                    let lo = self.row_ptr[r] as usize;
                    let hi = self.row_ptr[r + 1] as usize;
                    let mut j0 = 0usize;
                    while j0 < b_cols {
                        let w = (b_cols - j0).min(PANEL);
                        let mut acc = [0.0f32; PANEL];
                        for (bits, src) in self.vals[lo..hi].iter().zip(&self.srcs[lo..hi]) {
                            let vf = lut[*bits as usize];
                            let bseg = &b_f32[*src as usize * b_cols + j0..][..w];
                            for (a, &bv) in acc[..w].iter_mut().zip(bseg) {
                                *a += vf * bv;
                            }
                        }
                        orow[j0..j0 + w].copy_from_slice(&acc[..w]);
                        j0 += w;
                    }
                }
            });
    }
}

/// A plan for `C = A * B` with a static V:N:M weight `A` — built once,
/// run on every request.
#[derive(Clone, Debug)]
pub struct SpmmPlan {
    weight: VnmMatrix,
    stream: Stream,
    dev: DeviceConfig,
    desc: MatmulDescriptor,
    opts: SpmmOptions,
    /// Autotuned instantiation at the planned bound; `None` when `V` is
    /// below the kernel's 16-row fragment contract (the stream executes
    /// any `V`; only the GPU pricing needs a launchable tile).
    tile: Option<TileConfig>,
    timing: Option<KernelTiming>,
    counts: Option<KernelCounts>,
}

impl SpmmPlan {
    /// Builds a plan; prefer [`crate::Engine::plan_spmm`].
    pub(crate) fn build(
        a: &VnmMatrix,
        desc: MatmulDescriptor,
        opts: &SpmmOptions,
        dev: &DeviceConfig,
    ) -> Self {
        assert_eq!(
            a.shape(),
            (desc.out_features, desc.in_features),
            "weight shape does not match the descriptor"
        );
        let stream = Stream::from_kernel(a);
        let v = a.config().v;
        let (tile, timing, counts) = if v >= 16 && v.is_multiple_of(16) {
            let tile = opts
                .tile
                .unwrap_or_else(|| venom_core::autotune(a, desc.b_cols, opts, dev).0);
            let counts = venom_core::build_counts(a, desc.b_cols, &tile, opts);
            let timing = venom_sim::pipeline::simulate(dev, &counts).unwrap_or_else(|e| {
                panic!(
                    "planned configuration {tile} cannot launch on {}: {e:?}",
                    dev.name
                )
            });
            (Some(tile), Some(timing), Some(counts))
        } else {
            (None, None, None)
        };
        SpmmPlan {
            weight: a.clone(),
            stream,
            dev: dev.clone(),
            desc,
            opts: *opts,
            tile,
            timing,
            counts,
        }
    }

    /// The compressed weight the plan executes.
    pub fn weight(&self) -> &VnmMatrix {
        &self.weight
    }

    /// Logical weight shape `(rows, k)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Stored nonzeros in the condensed stream.
    pub fn nnz(&self) -> usize {
        self.stream.nnz()
    }

    /// The output-column bound the tile was tuned (and priced) for. Runs
    /// beyond the bound stay exact; only the captured pricing assumes it.
    pub fn b_cols_bound(&self) -> usize {
        self.desc.b_cols
    }

    /// The autotuned template instantiation (`None` for V < 16 patterns,
    /// which only the functional stream supports).
    pub fn tile(&self) -> Option<TileConfig> {
        self.tile
    }

    /// Simulated timing of one dispatch at the planned bound.
    pub fn timing(&self) -> Option<&KernelTiming> {
        self.timing.as_ref()
    }

    /// Priced resource counts at the planned bound.
    pub fn counts(&self) -> Option<&KernelCounts> {
        self.counts.as_ref()
    }

    /// Prices a dispatch at a different width with the planned tile.
    pub fn price(&self, b_cols: usize, opts: &SpmmOptions) -> Option<KernelTiming> {
        let tile = self.tile?;
        let (r, k) = self.weight.shape();
        let counts =
            venom_core::build_counts_shape(r, k, b_cols, self.weight.config(), &tile, opts);
        venom_sim::pipeline::simulate(&self.dev, &counts).ok()
    }

    /// Executes `C = A * B`; bit-identical to
    /// `venom_core::spmm(&a, &b, ..).c` (and to `a.spmm_ref(&b)`).
    ///
    /// # Panics
    /// Panics if `B` has a row count different from the planned K.
    pub fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        self.stream.run_half(b)
    }

    /// One dispatch over many requests: concatenates the operands along
    /// the output-column dimension, multiplies once, and splits the
    /// result. Bit-identical to running each operand separately (columns
    /// are independent in every path).
    ///
    /// # Panics
    /// Panics if any operand has a row count different from the planned K.
    pub fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        self.stream.run_batch(bs)
    }

    /// The fused layer forward `y = x W^T + b`: stages `x` through f16
    /// rounding into the kernel orientation, runs the stream, and returns
    /// the transposed-plus-bias output — bit-identical to the per-call
    /// chain `spmm(&w, &x.to_half().transpose(), ..).c.transpose()` with
    /// the bias added row-wise afterwards.
    ///
    /// # Panics
    /// Panics on feature or bias length mismatch.
    pub fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        self.stream.run_linear(x, bias)
    }

    /// [`Self::run_linear`] over a pre-staged operand (see
    /// [`crate::stage::stage_activations_t`]); `tokens` is the activation
    /// row count the buffer was staged from.
    pub fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(
            staged.len(),
            self.stream.k * tokens,
            "staged operand size mismatch"
        );
        self.stream.run_linear_staged(staged, tokens, bias)
    }
}

impl MatmulPlan for SpmmPlan {
    fn format(&self) -> MatmulFormat {
        MatmulFormat::Vnm
    }

    fn descriptor(&self) -> &MatmulDescriptor {
        &self.desc
    }

    fn timing(&self) -> Option<&KernelTiming> {
        SpmmPlan::timing(self)
    }

    fn counts(&self) -> Option<&KernelCounts> {
        SpmmPlan::counts(self)
    }

    fn stored_values(&self) -> usize {
        self.stream.nnz()
    }

    fn weight_dense(&self) -> Matrix<Half> {
        self.weight.decompress()
    }

    fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        SpmmPlan::run(self, b)
    }

    fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        SpmmPlan::run_batch(self, bs)
    }

    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        SpmmPlan::run_linear(self, x, bias)
    }

    fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        SpmmPlan::run_linear_staged(self, staged, tokens, bias)
    }

    fn run_oneshot(&self, b: &Matrix<Half>) -> Matrix<f32> {
        if self.tile.is_some() {
            // The full per-call entry point: tile selection, pricing and
            // staging redone on every dispatch.
            venom_core::spmm(&self.weight, b, &self.opts, &self.dev).c
        } else {
            // V below the fragment contract has no launchable kernel; the
            // compressed-format oracle is the per-call reference there.
            self.weight.spmm_ref(b)
        }
    }
}

/// A plan for a dense half weight — the unpruned layers of a partially
/// sparsified model go through the same plan/execute seam.
#[derive(Clone, Debug)]
pub struct GemmPlan {
    weight: Matrix<Half>,
    stream: Stream,
    desc: MatmulDescriptor,
    timing: Option<KernelTiming>,
    counts: Option<KernelCounts>,
}

impl GemmPlan {
    /// Plans a dense weight without pricing (no device in scope). Prefer
    /// [`Engine::plan_gemm`], which attaches cost-model timing for the
    /// engine's device.
    ///
    /// [`Engine::plan_gemm`]: crate::Engine::plan_gemm
    pub fn new(w: &Matrix<Half>) -> Self {
        GemmPlan {
            weight: w.clone(),
            stream: Stream::from_kernel(w),
            desc: MatmulDescriptor::for_weight(w),
            timing: None,
            counts: None,
        }
    }

    /// Plans a dense weight priced on the cuBLAS model at the
    /// descriptor's column bound; prefer [`crate::Engine::plan_gemm`].
    pub(crate) fn build(w: &Matrix<Half>, desc: MatmulDescriptor, dev: &DeviceConfig) -> Self {
        desc.assert_matches(w);
        GemmPlan {
            weight: w.clone(),
            stream: Stream::from_kernel(w),
            desc,
            timing: Some(crate::pricing::price_dense(desc.gemm_shape(), dev)),
            counts: Some(crate::pricing::dense_counts(desc.gemm_shape(), dev)),
        }
    }

    /// The dense weight the plan executes.
    pub fn weight(&self) -> &Matrix<Half> {
        &self.weight
    }

    /// Logical weight shape `(rows, k)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.weight.rows(), self.weight.cols())
    }

    /// Cost-model timing of one dispatch at the planned bound (`None`
    /// for plans built without a device via [`Self::new`]).
    pub fn timing(&self) -> Option<&KernelTiming> {
        self.timing.as_ref()
    }

    /// Executes `C = W * B`; bit-identical to
    /// `venom_tensor::gemm::gemm_parallel(&w, &b)` (and `gemm_ref`).
    ///
    /// # Panics
    /// Panics if `B` has a row count different from the weight columns.
    pub fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        self.stream.run_half(b)
    }

    /// Batched dispatch over concatenated requests (see
    /// [`SpmmPlan::run_batch`]).
    pub fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        self.stream.run_batch(bs)
    }

    /// The fused layer forward `y = x W^T + b`; bit-identical to the
    /// per-call chain through `gemm_parallel` (see
    /// [`SpmmPlan::run_linear`]).
    ///
    /// # Panics
    /// Panics on feature or bias length mismatch.
    pub fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        self.stream.run_linear(x, bias)
    }

    /// [`Self::run_linear`] over a pre-staged operand.
    pub fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(
            staged.len(),
            self.stream.k * tokens,
            "staged operand size mismatch"
        );
        self.stream.run_linear_staged(staged, tokens, bias)
    }
}

impl MatmulPlan for GemmPlan {
    fn format(&self) -> MatmulFormat {
        MatmulFormat::Dense
    }

    fn descriptor(&self) -> &MatmulDescriptor {
        &self.desc
    }

    fn timing(&self) -> Option<&KernelTiming> {
        GemmPlan::timing(self)
    }

    fn counts(&self) -> Option<&KernelCounts> {
        self.counts.as_ref()
    }

    fn stored_values(&self) -> usize {
        self.stream.nnz()
    }

    fn weight_dense(&self) -> Matrix<Half> {
        self.weight.clone()
    }

    fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        GemmPlan::run(self, b)
    }

    fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        GemmPlan::run_batch(self, bs)
    }

    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        GemmPlan::run_linear(self, x, bias)
    }

    fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        GemmPlan::run_linear_staged(self, staged, tokens, bias)
    }

    fn run_oneshot(&self, b: &Matrix<Half>) -> Matrix<f32> {
        venom_tensor::gemm::gemm_parallel(&self.weight, b)
    }
}

/// A plan over any [`SparseKernel`] — the N:M, CSR, CVSE and Blocked-ELL
/// backends execute through it (V:N:M and dense have the specialised
/// [`SpmmPlan`]/[`GemmPlan`], which capture extra format state).
#[derive(Clone, Debug)]
pub struct FormatPlan {
    kernel: Arc<dyn SparseKernel>,
    stream: Stream,
    desc: MatmulDescriptor,
    timing: Option<KernelTiming>,
    counts: Option<KernelCounts>,
}

impl FormatPlan {
    /// Wraps a compressed kernel with its priced launch and the resource
    /// counts the timing was priced on (so the plan can report its
    /// roofline regime); built by [`crate::Engine::plan_with_format`] /
    /// [`crate::Engine::plan_auto`].
    pub(crate) fn build_counted(
        kernel: Arc<dyn SparseKernel>,
        desc: MatmulDescriptor,
        timing: Option<KernelTiming>,
        counts: Option<KernelCounts>,
    ) -> Self {
        let (r, k) = kernel.shape();
        assert_eq!(
            (r, k),
            (desc.out_features, desc.in_features),
            "kernel/descriptor mismatch"
        );
        let stream = Stream::from_kernel(kernel.as_ref());
        FormatPlan {
            kernel,
            stream,
            desc,
            timing,
            counts,
        }
    }

    /// The compressed weight the plan executes.
    pub fn kernel(&self) -> &dyn SparseKernel {
        self.kernel.as_ref()
    }

    /// Logical weight shape `(rows, k)`.
    pub fn shape(&self) -> (usize, usize) {
        self.kernel.shape()
    }
}

impl MatmulPlan for FormatPlan {
    fn format(&self) -> MatmulFormat {
        self.kernel.format()
    }

    fn descriptor(&self) -> &MatmulDescriptor {
        &self.desc
    }

    fn timing(&self) -> Option<&KernelTiming> {
        self.timing.as_ref()
    }

    fn counts(&self) -> Option<&KernelCounts> {
        self.counts.as_ref()
    }

    fn stored_values(&self) -> usize {
        self.stream.nnz()
    }

    fn weight_dense(&self) -> Matrix<Half> {
        self.kernel.to_dense()
    }

    fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        self.stream.run_half(b)
    }

    fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        self.stream.run_batch(bs)
    }

    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        self.stream.run_linear(x, bias)
    }

    fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(
            staged.len(),
            self.stream.k * tokens,
            "staged operand size mismatch"
        );
        self.stream.run_linear_staged(staged, tokens, bias)
    }

    fn run_oneshot(&self, b: &Matrix<Half>) -> Matrix<f32> {
        // The format's own per-call staged path (bit-identical to its
        // spmm_ref, re-staging B on every dispatch).
        self.kernel.spmm_parallel(b)
    }
}

/// The bandwidth-optimized non-mma plan for a V:N:M weight.
///
/// Executes the same compressed operand as [`SpmmPlan`] but through the
/// narrow `BandStream` replay, and is priced on the CUDA-core DRAM
/// roofline ([`venom_core::build_counts_band`]) instead of the Spatha
/// `mma.sp` pipeline — so on memory-bound shapes (small output widths,
/// tall-skinny weights) its modelled cost undercuts the mma stream and
/// [`crate::Engine::plan_auto`] routes to it at the ridge point. Results
/// stay bit-identical to `spmm_ref` on every dispatch path.
#[derive(Clone, Debug)]
pub struct BandPlan {
    weight: VnmMatrix,
    stream: BandStream,
    desc: MatmulDescriptor,
    timing: KernelTiming,
    counts: KernelCounts,
}

impl BandPlan {
    /// Builds the band plan; prefer [`crate::Engine::plan_band`] (or
    /// [`crate::Engine::plan_auto`], which considers it as a candidate).
    ///
    /// # Errors
    /// [`PlanError::Incompatible`] when `K` does not fit the stream's
    /// 16-bit source indices.
    pub(crate) fn build(
        a: &VnmMatrix,
        desc: MatmulDescriptor,
        dev: &DeviceConfig,
    ) -> Result<Self, PlanError> {
        assert_eq!(
            a.shape(),
            (desc.out_features, desc.in_features),
            "weight shape does not match the descriptor"
        );
        let stream = BandStream::from_vnm(a).ok_or_else(|| PlanError::Incompatible {
            format: MatmulFormat::Vnm,
            reason: format!(
                "the band stream stores 16-bit source indices; K = {} does not fit",
                a.shape().1
            ),
        })?;
        let (r, k) = a.shape();
        let counts = venom_core::build_counts_band(r, k, desc.b_cols, stream.nnz());
        let timing = venom_sim::pipeline::simulate(dev, &counts)
            .expect("the band kernel uses no shared memory and always launches");
        Ok(BandPlan {
            weight: a.clone(),
            stream,
            desc,
            timing,
            counts,
        })
    }

    /// The compressed weight the plan executes.
    pub fn weight(&self) -> &VnmMatrix {
        &self.weight
    }

    /// Logical weight shape `(rows, k)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Stored nonzeros in the narrow stream.
    pub fn nnz(&self) -> usize {
        self.stream.nnz()
    }

    /// Simulated timing of one dispatch at the planned bound.
    pub fn timing(&self) -> &KernelTiming {
        &self.timing
    }

    /// Priced resource counts at the planned bound.
    pub fn counts(&self) -> &KernelCounts {
        &self.counts
    }
}

impl MatmulPlan for BandPlan {
    fn format(&self) -> MatmulFormat {
        MatmulFormat::Vnm
    }

    fn path(&self) -> &'static str {
        "band"
    }

    fn descriptor(&self) -> &MatmulDescriptor {
        &self.desc
    }

    fn timing(&self) -> Option<&KernelTiming> {
        Some(&self.timing)
    }

    fn counts(&self) -> Option<&KernelCounts> {
        Some(&self.counts)
    }

    fn stored_values(&self) -> usize {
        self.stream.nnz()
    }

    fn approx_bytes(&self) -> usize {
        // 4 bytes per stored operand (f16 bits + u16 source index) plus
        // the row pointers.
        64 + self.stream.nnz() * 4 + (self.stream.rows + 1) * 4
    }

    fn weight_dense(&self) -> Matrix<Half> {
        self.weight.decompress()
    }

    fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        self.stream.run_half(b)
    }

    fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        self.stream.run_batch(bs)
    }

    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        self.stream.run_linear(x, bias)
    }

    fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(
            staged.len(),
            self.stream.k * tokens,
            "staged operand size mismatch"
        );
        self.stream.run_linear_staged(staged, tokens, bias)
    }

    fn run_oneshot(&self, b: &Matrix<Half>) -> Matrix<f32> {
        // The per-call swapped-operand kernel: B decoded in one pass,
        // product accumulated transposed, transposed back by a move.
        venom_core::spmm_swapped(&self.weight, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venom_core::spmm;
    use venom_format::VnmConfig;
    use venom_pruner::magnitude;
    use venom_tensor::{gemm, random};

    fn dev() -> DeviceConfig {
        DeviceConfig::rtx3090()
    }

    fn vnm_fixture(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> VnmMatrix {
        let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
        let mask = magnitude::prune_vnm(&w, cfg);
        VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg)
    }

    fn build(a: &VnmMatrix, b_cols: usize) -> SpmmPlan {
        let desc = MatmulDescriptor::new(a.shape().0, a.shape().1).with_b_cols(b_cols);
        SpmmPlan::build(a, desc, &SpmmOptions::default(), &dev())
    }

    #[test]
    fn plan_run_is_bit_identical_to_one_shot_spmm() {
        let cfg = VnmConfig::new(64, 2, 10);
        let a = vnm_fixture(70, 93, cfg, 1);
        let b = random::normal_matrix(93, 37, 0.0, 1.0, 2).to_half();
        let plan = build(&a, 64);
        let got = plan.run(&b);
        let want = spmm(&a, &b, &SpmmOptions::default(), &dev()).c;
        assert_eq!(got, want);
        assert_eq!(got, a.spmm_ref(&b));
    }

    #[test]
    fn plan_supports_sub_fragment_v() {
        // V = 8 has no launchable tile (the kernel needs 16-row
        // fragments) but the functional stream executes it exactly.
        let cfg = VnmConfig::new(8, 2, 8);
        let a = vnm_fixture(24, 40, cfg, 3);
        let b = random::normal_matrix(40, 9, 0.0, 1.0, 4).to_half();
        let plan = build(&a, 16);
        assert!(plan.tile().is_none());
        assert_eq!(plan.run(&b), a.spmm_ref(&b));
        // The erased per-call path falls back to the oracle there.
        assert_eq!(MatmulPlan::run_oneshot(&plan, &b), a.spmm_ref(&b));
    }

    #[test]
    fn batched_run_matches_separate_runs() {
        let cfg = VnmConfig::new(32, 2, 8);
        let a = vnm_fixture(64, 64, cfg, 5);
        let plan = build(&a, 48);
        let b1 = random::normal_matrix(64, 11, 0.0, 1.0, 6).to_half();
        let b2 = random::normal_matrix(64, 24, 0.0, 1.0, 7).to_half();
        let b3 = random::normal_matrix(64, 1, 0.0, 1.0, 8).to_half();
        let batch = plan.run_batch(&[&b1, &b2, &b3]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], plan.run(&b1));
        assert_eq!(batch[1], plan.run(&b2));
        assert_eq!(batch[2], plan.run(&b3));
    }

    #[test]
    fn fused_linear_matches_per_call_chain() {
        let cfg = VnmConfig::new(16, 2, 8);
        let a = vnm_fixture(32, 48, cfg, 9);
        let bias: Vec<f32> = (0..32).map(|i| i as f32 * 0.25 - 4.0).collect();
        let x = random::activation_matrix(19, 48, 10);
        let plan = build(&a, 32);
        let got = plan.run_linear(&x, &bias);
        // The per-call layer chain — also the trait's default method.
        let want = MatmulPlan::run_linear_percall(&plan, &x, &bias);
        assert_eq!(got, want);
        let xt = x.to_half().transpose();
        let mut manual = spmm(&a, &xt, &SpmmOptions::default(), &dev()).c.transpose();
        for r in 0..manual.rows() {
            for (c, bv) in bias.iter().enumerate() {
                manual.set(r, c, manual.get(r, c) + bv);
            }
        }
        assert_eq!(got, manual);
    }

    #[test]
    fn gemm_plan_matches_gemm_parallel() {
        let w = random::normal_matrix(33, 29, 0.0, 1.0, 11).to_half();
        let b = random::normal_matrix(29, 21, 0.0, 1.0, 12).to_half();
        let plan = GemmPlan::new(&w);
        assert_eq!(plan.run(&b), gemm::gemm_parallel(&w, &b));
        assert!(plan.timing().is_none(), "unpriced without a device");
        // Batched dense dispatch equals separate runs too.
        let batch = plan.run_batch(&[&b, &b]);
        assert_eq!(batch[0], plan.run(&b));
        assert_eq!(batch[1], plan.run(&b));
    }

    #[test]
    fn gemm_plan_fused_linear_matches_per_call_chain() {
        let w = random::normal_matrix(24, 40, 0.0, 1.0, 13).to_half();
        let bias: Vec<f32> = (0..24).map(|i| (i as f32).sin()).collect();
        let x = random::activation_matrix(15, 40, 14);
        let plan = GemmPlan::new(&w);
        let got = plan.run_linear(&x, &bias);
        assert_eq!(got, MatmulPlan::run_linear_percall(&plan, &x, &bias));
        let xt = x.to_half().transpose();
        let mut want = gemm::gemm_parallel(&w, &xt).transpose();
        for r in 0..want.rows() {
            for (c, bv) in bias.iter().enumerate() {
                want.set(r, c, want.get(r, c) + bv);
            }
        }
        assert_eq!(got, want);
    }

    #[test]
    fn format_plan_is_bit_identical_to_its_kernel_oracle() {
        use venom_format::{CsrMatrix, SparsityMask};
        let dense = {
            let w = random::normal_matrix(37, 53, 0.0, 1.0, 15);
            let mask = SparsityMask::from_fn(37, 53, |r, c| (r * 31 + c * 17) % 10 < 4);
            mask.apply_f32(&w).to_half()
        };
        let csr = CsrMatrix::from_dense(&dense);
        let desc = MatmulDescriptor::new(37, 53).with_b_cols(21);
        let plan = FormatPlan::build_counted(Arc::new(csr.clone()), desc, None, None);
        let b = random::normal_matrix(53, 21, 0.0, 1.0, 16).to_half();
        assert_eq!(plan.run(&b), csr.spmm_ref(&b));
        assert_eq!(plan.run_oneshot(&b), csr.spmm_ref(&b));
        assert_eq!(plan.format(), MatmulFormat::Csr);
        // The fused layer path equals the per-call chain.
        let x = random::activation_matrix(9, 53, 17);
        let bias = vec![0.25f32; 37];
        assert_eq!(
            plan.run_linear(&x, &bias),
            plan.run_linear_percall(&x, &bias)
        );
    }

    #[test]
    fn shared_staging_matches_unshared() {
        let cfg = VnmConfig::new(16, 2, 8);
        let a = vnm_fixture(32, 32, cfg, 15);
        let plan = build(&a, 16);
        let x = random::activation_matrix(9, 32, 16);
        let bias = vec![0.5f32; 32];
        let staged = stage::stage_activations_t(&x);
        let got = plan.run_linear_staged(&staged, x.rows(), &bias);
        assert_eq!(got, plan.run_linear(&x, &bias));
    }

    #[test]
    fn repeated_runs_are_stable() {
        let cfg = VnmConfig::new(32, 2, 16);
        let a = vnm_fixture(32, 64, cfg, 17);
        let b = random::normal_matrix(64, 13, 0.0, 1.0, 18).to_half();
        let plan = build(&a, 16);
        let first = plan.run(&b);
        for _ in 0..3 {
            assert_eq!(plan.run(&b), first);
        }
    }

    #[test]
    #[should_panic(expected = "B must have K")]
    fn run_rejects_shape_mismatch() {
        let cfg = VnmConfig::new(16, 2, 8);
        let a = vnm_fixture(16, 32, cfg, 19);
        let plan = build(&a, 8);
        let _ = plan.run(&Matrix::<Half>::zeros(16, 4));
    }

    fn band_build(a: &VnmMatrix, b_cols: usize) -> BandPlan {
        let desc = MatmulDescriptor::new(a.shape().0, a.shape().1).with_b_cols(b_cols);
        BandPlan::build(a, desc, &dev()).expect("K fits 16-bit indices")
    }

    #[test]
    fn band_plan_is_bit_identical_on_every_dispatch_path() {
        let cfg = VnmConfig::new(64, 2, 10);
        let a = vnm_fixture(70, 90, cfg, 21);
        let b = random::normal_matrix(90, 13, 0.0, 1.0, 22).to_half();
        let plan = band_build(&a, 13);
        let want = a.spmm_ref(&b);
        assert_eq!(plan.run(&b), want, "staged band replay");
        assert_eq!(
            MatmulPlan::run_oneshot(&plan, &b),
            want,
            "swapped-operand per-call path"
        );
        // And both agree with the mma-stream plan bit-for-bit.
        assert_eq!(build(&a, 13).run(&b), plan.run(&b));
    }

    #[test]
    fn band_plan_batch_and_linear_match_the_stream_plan() {
        let cfg = VnmConfig::new(32, 2, 8);
        let a = vnm_fixture(64, 64, cfg, 23);
        let band = band_build(&a, 16);
        let mma = build(&a, 16);
        let b1 = random::normal_matrix(64, 5, 0.0, 1.0, 24).to_half();
        let b2 = random::normal_matrix(64, 19, 0.0, 1.0, 25).to_half();
        let batch = band.run_batch(&[&b1, &b2]);
        assert_eq!(batch[0], mma.run(&b1));
        assert_eq!(batch[1], mma.run(&b2));
        let x = random::activation_matrix(11, 64, 26);
        let bias: Vec<f32> = (0..64).map(|i| (i as f32).cos()).collect();
        assert_eq!(band.run_linear(&x, &bias), mma.run_linear(&x, &bias));
        assert_eq!(
            band.run_linear(&x, &bias),
            MatmulPlan::run_linear_percall(&band, &x, &bias)
        );
    }

    #[test]
    fn band_plan_reports_its_path_and_memory_regime() {
        use venom_sim::Regime;
        let cfg = VnmConfig::new(64, 2, 8);
        let a = vnm_fixture(1024, 768, cfg, 27);
        // Small output width: left of the CUDA-core ridge.
        let plan = band_build(&a, 8);
        assert_eq!(plan.format(), MatmulFormat::Vnm);
        assert_eq!(MatmulPlan::path(&plan), "band");
        assert_eq!(
            MatmulPlan::regime(&plan, &dev()),
            Some(Regime::MemoryBound),
            "c=8 tall-skinny must sit left of the ridge"
        );
        assert!(MatmulPlan::cost_ms(&plan).is_some());
    }

    #[test]
    fn band_plan_rejects_wide_k() {
        // K beyond u16 range cannot be streamed with narrow indices.
        let cfg = VnmConfig::new(16, 2, 8);
        let k = (u16::MAX as usize + 1) + 8;
        let w = Matrix::<Half>::zeros(16, k);
        let mask = venom_format::SparsityMask::from_fn(16, k, |_, c| c % 8 < 2);
        let a = VnmMatrix::compress(&w, &mask, cfg);
        let desc = MatmulDescriptor::new(16, k).with_b_cols(8);
        let err = BandPlan::build(&a, desc, &dev()).unwrap_err();
        assert!(
            err.to_string().contains("16-bit source indices"),
            "got: {err}"
        );
    }
}
