//! Per-thread scratch arena for plan execution.
//!
//! `plan.run(..)` needs two transient f32 buffers per call — the staged
//! RHS and (on the fused layer paths) the pre-transpose product. Leasing
//! them from a thread-local pool instead of allocating makes steady-state
//! serving allocation-free apart from the returned output, mirroring how
//! the kernel layer reuses its per-thread [`Workspace`] across blocks.
//!
//! [`Workspace`]: venom_core::spmm

use std::cell::RefCell;

thread_local! {
    /// Returned buffers, ready for re-lease. Kept small: a plan run leases
    /// at most two buffers at a time.
    static POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// A leased scratch buffer; hand it back with [`release`] when done.
///
/// The buffer comes back zero-filled at exactly `len` elements (the run
/// paths accumulate in place, so a dirty buffer would corrupt results).
pub fn lease(len: usize) -> Vec<f32> {
    let mut buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    buf.clear();
    buf.resize(len, 0.0);
    buf
}

/// Returns a buffer to the pool for the next lease on this thread.
pub fn release(buf: Vec<f32>) {
    POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 4 {
            pool.push(buf);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_is_zeroed_after_release() {
        let mut a = lease(8);
        a.iter_mut().for_each(|x| *x = 7.0);
        release(a);
        let b = lease(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&x| x == 0.0));
        release(b);
    }

    #[test]
    fn pool_is_bounded() {
        let bufs: Vec<_> = (0..8).map(|_| lease(4)).collect();
        for b in bufs {
            release(b);
        }
        POOL.with(|p| assert!(p.borrow().len() <= 4));
    }
}
