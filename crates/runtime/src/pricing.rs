//! Cost-model pricing for every plannable format.
//!
//! `plan_auto` compares formats by the same currency: simulated
//! milliseconds of one dispatch at the descriptor's column bound on the
//! engine's device. Four models come straight from the baseline crate
//! (each encodes its library's published performance character); the
//! V:N:M path autotunes the Spatha template space; Blocked-ELL gets the
//! cuSPARSE-style block-kernel model defined here (dense tensor-core
//! `mma` over every stored block, padding included — the format's honest
//! cost).

use venom_baselines::{ClaspSpmm, DenseGemm, SparseLtSpmm, SputnikSpmm};
use venom_core::SpmmOptions;
use venom_format::{BlockedEllMatrix, CsrMatrix, CvseMatrix, NmCompressed, VnmMatrix};
use venom_sim::pipeline::{simulate, KernelCounts};
use venom_sim::{BlockResources, DeviceConfig, KernelTiming};
use venom_tensor::GemmShape;

/// Output columns per thread block of the Blocked-ELL model.
pub const ELL_COLS_PER_BLOCK: usize = 64;

/// Prices a dense GEMM of `shape` via the cuBLAS model.
pub fn price_dense(shape: GemmShape, dev: &DeviceConfig) -> KernelTiming {
    DenseGemm::time(shape, dev)
}

/// Counts of the cuBLAS-selected launch for a dense GEMM of `shape` —
/// attached to the plan so it can report its roofline regime alongside
/// the price.
pub fn dense_counts(shape: GemmShape, dev: &DeviceConfig) -> KernelCounts {
    DenseGemm::select(shape, dev)
}

/// Counts of the cuSPARSELt-model launch for an N:M weight.
pub fn nm_counts(a: &NmCompressed, b_cols: usize) -> KernelCounts {
    let (r, k) = a.shape();
    SparseLtSpmm::counts(GemmShape::new(r, k, b_cols))
}

/// Counts of the Sputnik-model launch for a CSR weight.
pub fn csr_counts(a: &CsrMatrix, b_cols: usize) -> KernelCounts {
    SputnikSpmm::counts(a, b_cols)
}

/// Counts of the CLASP-model launch for a CVSE weight.
pub fn cvse_counts(a: &CvseMatrix, b_cols: usize) -> KernelCounts {
    ClaspSpmm::counts(a, b_cols)
}

/// Prices a V:N:M SpMM by autotuning the Spatha template space; `None`
/// when `V` violates the kernel's 16-row fragment contract (the
/// functional stream still executes such weights — they just have no
/// launchable configuration to price).
pub fn price_vnm(
    a: &VnmMatrix,
    b_cols: usize,
    opts: &SpmmOptions,
    dev: &DeviceConfig,
) -> Option<KernelTiming> {
    let v = a.config().v;
    if v < 16 || !v.is_multiple_of(16) {
        return None;
    }
    let tile = opts
        .tile
        .unwrap_or_else(|| venom_core::autotune(a, b_cols, opts, dev).0);
    let counts = venom_core::build_counts(a, b_cols, &tile, opts);
    simulate(dev, &counts).ok()
}

/// Prices the int8-quantized V:N:M SpMM: the same autotuned template as
/// [`price_vnm`], counted with the `Uint8` operand profile — 1-byte
/// value/B planes (half the bytes) and Table 1's doubled k-depth per
/// `mma.sp` (half the instructions), plus the per-row dequantization
/// scales. `None` under the same 16-row fragment contract as the f16
/// model.
pub fn price_vnm_i8(
    a: &VnmMatrix,
    b_cols: usize,
    opts: &SpmmOptions,
    dev: &DeviceConfig,
) -> Option<KernelTiming> {
    let v = a.config().v;
    if v < 16 || !v.is_multiple_of(16) {
        return None;
    }
    let tile = opts
        .tile
        .unwrap_or_else(|| venom_core::autotune(a, b_cols, opts, dev).0);
    let (r, k) = a.shape();
    let counts = venom_core::build_counts_shape_i8(r, k, b_cols, a.config(), &tile, opts);
    simulate(dev, &counts).ok()
}

/// Prices an N:M SpMM via the cuSPARSELt model (the vendor kernel
/// skeleton; its hardware-native pattern is 2:4).
pub fn price_nm(a: &NmCompressed, b_cols: usize, dev: &DeviceConfig) -> KernelTiming {
    let (r, k) = a.shape();
    SparseLtSpmm::time(GemmShape::new(r, k, b_cols), dev)
}

/// Prices a CSR SpMM via the Sputnik model (CUDA cores, measured load
/// imbalance).
pub fn price_csr(a: &CsrMatrix, b_cols: usize, dev: &DeviceConfig) -> KernelTiming {
    SputnikSpmm::time(a, b_cols, dev)
}

/// Prices a CVSE SpMM via the CLASP model (dense tensor cores over
/// gathered column vectors).
pub fn price_cvse(a: &CvseMatrix, b_cols: usize, dev: &DeviceConfig) -> KernelTiming {
    ClaspSpmm::time(a, b_cols, dev)
}

/// Builds the kernel counts of the Blocked-ELL model from the actual
/// stored structure.
///
/// One thread block covers one block row x [`ELL_COLS_PER_BLOCK`] output
/// columns and iterates the row's `ell_width` stored blocks. Every
/// stored block — padding included — costs dense `mma.m16n8k16`
/// instructions (`bs < 16` pads the fragment rows, so the instruction
/// count does not shrink with small blocks), its value bytes, and the
/// gather of its `bs` B rows. That is exactly the regular-layout waste
/// that makes the format lose at skewed DL sparsity.
pub fn blocked_ell_counts(a: &BlockedEllMatrix, b_cols: usize) -> KernelCounts {
    let (r, k) = a.shape();
    let bs = a.block_size();
    let brs = (r / bs).max(1);
    let width = a.ell_width().max(1);
    let grid = (brs * b_cols.div_ceil(ELL_COLS_PER_BLOCK)) as u64;
    // Per stored block: bs/16 fragment rows x 64/8 fragment cols x bs/16
    // K steps of dense mma (ceil: partial fragments cost full issues).
    let mma = (width * bs.div_ceil(16) * ELL_COLS_PER_BLOCK.div_ceil(8) * bs.div_ceil(16)) as u64;
    // Loads: the row's stored block payloads + block indices + one bs-row
    // B panel per stored block.
    let a_bytes = (width * bs * bs * 2 + width * 4) as u64;
    let b_bytes = (width * bs * ELL_COLS_PER_BLOCK * 2) as u64;
    KernelCounts {
        name: format!("blocked_ell[{bs}x{bs}]"),
        grid_blocks: grid,
        block: BlockResources::new(128, 32 * 1024, 96),
        k_iters: width as u64,
        pipeline_stages: 2,
        mma_dense_per_block: mma,
        gmem_load_bytes_per_block: a_bytes + b_bytes,
        gmem_store_bytes_per_block: (bs * ELL_COLS_PER_BLOCK * 2) as u64,
        // Blocks in different grid columns re-read the same stored blocks'
        // B rows; the regular layout prefetches well.
        l2_hit_fraction: 0.5,
        smem_transactions_per_block: (a_bytes + b_bytes) / 128 * 2,
        prologue_cycles_per_wave: 1000,
        efficiency: 0.6,
        effective_flops: 2 * (r * k * b_cols) as u64,
        ..KernelCounts::named("blocked_ell")
    }
}

/// Prices a Blocked-ELL SpMM on `dev`.
pub fn price_blocked_ell(a: &BlockedEllMatrix, b_cols: usize, dev: &DeviceConfig) -> KernelTiming {
    simulate(dev, &blocked_ell_counts(a, b_cols)).expect("small fixed blocks always fit")
}

/// NaN-safe total order on candidate costs: a NaN cost (a degenerate
/// descriptor or a cost model dividing 0 by 0) sorts as infinitely
/// expensive — the candidate loses the selection instead of panicking it
/// mid-`min_by`, so `plan_auto` always returns a servable plan.
pub fn cost_cmp(a: f64, b: f64) -> core::cmp::Ordering {
    let sane = |x: f64| if x.is_nan() { f64::INFINITY } else { x };
    sane(a).total_cmp(&sane(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use venom_format::SparsityMask;
    use venom_fp16::Half;
    use venom_tensor::{random, Matrix};

    fn dev() -> DeviceConfig {
        DeviceConfig::rtx3090()
    }

    fn block_sparse(r: usize, k: usize, bs: usize, keep: f64, seed: u64) -> Matrix<Half> {
        let dense = random::normal_matrix(r, k, 0.0, 1.0, seed);
        let mask = SparsityMask::from_fn(r, k, |i, j| {
            ((i / bs * 31 + j / bs * 17 + seed as usize) % 100) as f64 / 100.0 < keep
        });
        mask.apply_f32(&dense).to_half()
    }

    #[test]
    fn cost_cmp_is_nan_safe_and_total() {
        use core::cmp::Ordering;
        // NaN sorts as infinitely expensive — never panics, never wins.
        assert_eq!(cost_cmp(f64::NAN, 1.0), Ordering::Greater);
        assert_eq!(cost_cmp(1.0, f64::NAN), Ordering::Less);
        // Two NaNs (or a NaN vs infinity) compare equal, keeping min_by
        // deterministic instead of order-dependent.
        assert_eq!(cost_cmp(f64::NAN, f64::NAN), Ordering::Equal);
        assert_eq!(cost_cmp(f64::NAN, f64::INFINITY), Ordering::Equal);
        // Finite costs keep their numeric order.
        assert_eq!(cost_cmp(0.5, 2.0), Ordering::Less);
        assert_eq!(cost_cmp(2.0, 0.5), Ordering::Greater);
        assert_eq!(cost_cmp(1.5, 1.5), Ordering::Equal);
        // The regression that motivated the helper: min_by over a pool
        // containing a NaN cost must pick the cheapest finite candidate.
        let best = [f64::NAN, 3.0, 1.0, f64::INFINITY]
            .into_iter()
            .min_by(|a, b| cost_cmp(*a, *b))
            .unwrap();
        assert_eq!(best, 1.0);
    }

    #[test]
    fn blocked_ell_speeds_up_with_block_sparsity() {
        let sparse = BlockedEllMatrix::from_dense(&block_sparse(1024, 4096, 32, 0.2, 1), 32);
        let denser = BlockedEllMatrix::from_dense(&block_sparse(1024, 4096, 32, 0.8, 2), 32);
        let t_sparse = price_blocked_ell(&sparse, 4096, &dev());
        let t_denser = price_blocked_ell(&denser, 4096, &dev());
        assert!(
            t_sparse.time_ms < t_denser.time_ms,
            "20% kept {} !< 80% kept {}",
            t_sparse.time_ms,
            t_denser.time_ms
        );
    }

    #[test]
    fn blocked_ell_charges_padding() {
        // One crowded block row forces padding everywhere: the priced
        // time must track ell_width, not the true population.
        let mut skewed = Matrix::<Half>::zeros(256, 1024);
        for c in 0..1024 {
            skewed.set(0, c, Half::ONE);
        }
        for br in 1..(256 / 16) {
            skewed.set(br * 16, 0, Half::ONE);
        }
        let skew = BlockedEllMatrix::from_dense(&skewed, 16);
        let mut uniform = Matrix::<Half>::zeros(256, 1024);
        for br in 0..(256 / 16) {
            uniform.set(br * 16, (br * 16) % 1024, Half::ONE);
        }
        let uni = BlockedEllMatrix::from_dense(&uniform, 16);
        assert!(skew.ell_width() > uni.ell_width());
        let t_skew = price_blocked_ell(&skew, 512, &dev());
        let t_uni = price_blocked_ell(&uni, 512, &dev());
        assert!(t_skew.time_ms > t_uni.time_ms);
    }

    #[test]
    fn format_prices_are_positive_and_ranked_sanely() {
        // At 50% unstructured sparsity every sparse CUDA-core path loses
        // to the dense tensor-core GEMM (the Fig. 13 shape).
        let shape = GemmShape::new(1024, 4096, 4096);
        let dense_ms = price_dense(shape, &dev()).time_ms;
        let w = {
            let d = random::normal_matrix(1024, 4096, 0.0, 1.0, 3);
            let mask = SparsityMask::from_fn(1024, 4096, |i, j| (i * 131 + j * 37) % 2 == 0);
            mask.apply_f32(&d).to_half()
        };
        let csr_ms = price_csr(&CsrMatrix::from_dense(&w), 4096, &dev()).time_ms;
        assert!(
            dense_ms > 0.0 && csr_ms > dense_ms,
            "dense {dense_ms} vs csr {csr_ms}"
        );
    }
}
