//! The matmul descriptor — the cuSPARSELt-style problem description the
//! unified plan surface is built around.
//!
//! A [`MatmulDescriptor`] says *what* is being computed (`y = x W^T (+
//! bias)(+ activation)` over a `out_features x in_features` weight, up to
//! `b_cols` output columns per dispatch, in which dtype); the
//! [`crate::Engine`] decides *how* (which storage format, which tile)
//! and returns a [`crate::MatmulPlan`]. Describing the epilogue and the
//! column bound up front is what lets planning price candidates fairly:
//! every format is tuned and timed for the same dispatch — and the dtype
//! selects between genuinely different execution paths: `f16` plans
//! replay exact fp16-product/f32-accumulation streams, `i8` plans run the
//! calibrated int8 container with exact i32 accumulation and a fused
//! dequantization epilogue.

use venom_fp16::Half;
use venom_tensor::{GemmShape, Matrix};

/// Operand precision of a planned matmul.
///
/// `F16` is the exact mixed-precision path (fp16 products, f32
/// accumulation). `I8` opts the descriptor into the calibrated int8
/// path: per-output-channel symmetric weight quantization, per-call
/// activation quantization, exact i32 accumulation (Table 1's `Uint8`
/// `mma.sp` row) and a dequantization scale folded into the epilogue.
/// [`crate::Engine::plan_auto`] prices i8 candidates alongside the f16
/// formats whenever the descriptor allows them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE half-precision operands, f32 accumulation.
    #[default]
    F16,
    /// Symmetric int8 operands, exact i32 accumulation.
    I8,
}

impl DType {
    /// Every operand dtype, in listing order.
    pub const ALL: [DType; 2] = [DType::F16, DType::I8];

    /// The CLI/report name — the single spelling [`core::fmt::Display`]
    /// prints and [`core::str::FromStr`] accepts.
    pub fn name(&self) -> &'static str {
        match self {
            DType::F16 => "f16",
            DType::I8 => "i8",
        }
    }

    /// The comma-separated list of valid dtype names (for error messages
    /// and usage text).
    pub fn valid_names() -> String {
        Self::ALL
            .iter()
            .map(|d| d.name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Parses a dtype name as the CLI spells it.
    ///
    /// # Errors
    /// Returns a message listing the valid choices.
    pub fn parse(s: &str) -> Result<Self, String> {
        Self::ALL
            .iter()
            .find(|d| d.name() == s)
            .copied()
            .ok_or_else(|| format!("unknown dtype '{s}' (valid: {})", Self::valid_names()))
    }
}

impl core::fmt::Display for DType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl core::str::FromStr for DType {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// The fused tail of the planned matmul.
///
/// `Bias` is executed by [`crate::MatmulPlan::run_linear`] (the bias add
/// fuses into the plan's transpose epilogue); `BiasGelu` additionally
/// names the activation the caller applies after the linear — recorded
/// so plans describe the full layer op they serve, and so future pricing
/// can charge the epilogue traffic where a backend would fuse it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Epilogue {
    /// Plain `C = A * B`.
    #[default]
    None,
    /// Row-bias added in the output epilogue (`y = x W^T + b`).
    Bias,
    /// Bias followed by the GELU activation (the FFN-1 layer shape).
    BiasGelu,
}

impl core::fmt::Display for Epilogue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Epilogue::None => f.write_str("none"),
            Epilogue::Bias => f.write_str("bias"),
            Epilogue::BiasGelu => f.write_str("bias+gelu"),
        }
    }
}

/// Describes one weight matmul for planning: logical weight shape,
/// operand dtype, epilogue, and the output-column bound the plan is
/// tuned and priced for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MatmulDescriptor {
    /// Weight rows — the layer's output features.
    pub out_features: usize,
    /// Weight columns — the reduction dimension K.
    pub in_features: usize,
    /// Output-column bound the plan is tuned and priced for. Wider runs
    /// stay exact; only the captured pricing assumes the bound.
    pub b_cols: usize,
    /// Operand precision.
    pub dtype: DType,
    /// The fused tail the plan serves.
    pub epilogue: Epilogue,
}

impl MatmulDescriptor {
    /// Default column bound when the caller gives none: the BERT
    /// evaluation sequence length of the paper (matches
    /// [`crate::Engine::DEFAULT_B_COLS_HINT`]).
    pub const DEFAULT_B_COLS: usize = 512;

    /// A descriptor for a `out_features x in_features` weight with the
    /// default column bound, f16 operands and no epilogue.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(out_features: usize, in_features: usize) -> Self {
        assert!(
            out_features > 0 && in_features > 0,
            "descriptor dimensions must be nonzero"
        );
        MatmulDescriptor {
            out_features,
            in_features,
            b_cols: Self::DEFAULT_B_COLS,
            dtype: DType::F16,
            epilogue: Epilogue::None,
        }
    }

    /// A descriptor matching a concrete weight matrix.
    pub fn for_weight(w: &Matrix<Half>) -> Self {
        Self::new(w.rows(), w.cols())
    }

    /// Overrides the output-column bound.
    ///
    /// # Panics
    /// Panics if `b_cols` is zero.
    #[must_use]
    pub fn with_b_cols(mut self, b_cols: usize) -> Self {
        assert!(b_cols > 0, "the column bound must be nonzero");
        self.b_cols = b_cols;
        self
    }

    /// Overrides the epilogue.
    #[must_use]
    pub fn with_epilogue(mut self, epilogue: Epilogue) -> Self {
        self.epilogue = epilogue;
        self
    }

    /// Overrides the operand dtype.
    #[must_use]
    pub fn with_dtype(mut self, dtype: DType) -> Self {
        self.dtype = dtype;
        self
    }

    /// The dense-equivalent GEMM shape at the planned bound
    /// (`out_features x in_features x b_cols`).
    pub fn gemm_shape(&self) -> GemmShape {
        GemmShape::new(self.out_features, self.in_features, self.b_cols)
    }

    /// Checks a weight matrix against the described shape.
    ///
    /// # Panics
    /// Panics if `w` is not `out_features x in_features`.
    pub fn assert_matches(&self, w: &Matrix<Half>) {
        assert_eq!(
            (w.rows(), w.cols()),
            (self.out_features, self.in_features),
            "weight shape does not match the descriptor"
        );
    }
}

impl core::fmt::Display for MatmulDescriptor {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}x{} (<= {} cols, {}, epilogue {})",
            self.out_features, self.in_features, self.b_cols, self.dtype, self.epilogue
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let d = MatmulDescriptor::new(64, 128)
            .with_b_cols(96)
            .with_epilogue(Epilogue::Bias);
        assert_eq!((d.out_features, d.in_features, d.b_cols), (64, 128, 96));
        assert_eq!(d.epilogue, Epilogue::Bias);
        assert_eq!(d.dtype, DType::F16);
        assert_eq!(d.gemm_shape(), GemmShape::new(64, 128, 96));
        assert!(d.to_string().contains("64x128"));
    }

    #[test]
    fn default_bound_is_bert_sequence_length() {
        assert_eq!(MatmulDescriptor::new(8, 8).b_cols, 512);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_dims() {
        let _ = MatmulDescriptor::new(0, 8);
    }

    #[test]
    fn dtype_display_and_fromstr_are_an_exhaustive_pairing() {
        // One source of truth: every variant's Display output parses back
        // to the variant, through both the inherent parse and FromStr.
        for d in DType::ALL {
            assert_eq!(DType::parse(&d.to_string()).unwrap(), d);
            assert_eq!(d.to_string().parse::<DType>().unwrap(), d);
            assert_eq!(d.to_string(), d.name());
        }
        let err = DType::parse("fp42").unwrap_err();
        assert!(err.contains("f16") && err.contains("i8"), "{err}");
        assert!("int8".parse::<DType>().is_err());
    }

    #[test]
    fn with_dtype_threads_through_display() {
        let d = MatmulDescriptor::new(8, 8).with_dtype(DType::I8);
        assert_eq!(d.dtype, DType::I8);
        assert!(d.to_string().contains("i8"), "{d}");
    }
}
