//! Operand staging for plan execution.
//!
//! Layers keep activations in `f32` and convert to half at the matmul
//! boundary; the engine fuses that rounding with the transpose into the
//! kernel's `K x tokens` orientation, producing in one pass exactly the
//! values the per-call path gets from `x.to_half().transpose()` followed
//! by the kernel's f16 -> f32 decode (rounding through f16 bits, then the
//! exact decode table).

use venom_fp16::{f16_to_f32_table, f32_to_f16_bits, Half};
use venom_tensor::Matrix;

/// Decodes a half matrix into `dst` (row-major, exact f16 -> f32).
///
/// # Panics
/// Panics if `dst.len() != b.len()`.
pub fn decode_rhs_into(b: &Matrix<Half>, dst: &mut [f32]) {
    venom_fp16::slice::decode_f32_into(b.as_slice(), dst);
}

/// Stages `x` (`tokens x features`, f32) as the kernel RHS: transposed to
/// `features x tokens` and rounded through f16, written into `dst`.
/// Element-for-element identical to `x.to_half().transpose()` followed by
/// the f32 decode of the staged pipeline.
///
/// # Panics
/// Panics if `dst.len() != x.len()`.
pub fn stage_activations_t_into(x: &Matrix<f32>, dst: &mut [f32]) {
    assert_eq!(dst.len(), x.len(), "staging buffer size mismatch");
    let table = f16_to_f32_table();
    let (tokens, features) = (x.rows(), x.cols());
    for (i, row) in x.as_slice().chunks_exact(features).enumerate() {
        for (j, &v) in row.iter().enumerate() {
            dst[j * tokens + i] = table[f32_to_f16_bits(v) as usize];
        }
    }
}

/// Owned-buffer variant of [`stage_activations_t_into`], for callers that
/// share one staged operand across several plans (e.g. the Q/K/V
/// projections of one attention layer).
pub fn stage_activations_t(x: &Matrix<f32>) -> Vec<f32> {
    let mut buf = vec![0.0; x.len()];
    stage_activations_t_into(x, &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_matches_to_half_transpose_decode() {
        let x = Matrix::from_fn(5, 7, |r, c| (r * 13 + c) as f32 * 0.137 - 2.0);
        let want = venom_fp16::slice::decode_f32_vec(x.to_half().transpose().as_slice());
        let got = stage_activations_t(&x);
        assert_eq!(got, want);
    }
}
