//! The int8-quantized execution plan: the i32-accumulating sibling of
//! [`crate::SpmmPlan`].
//!
//! A [`QuantSpmmPlan`] captures, at build time, the calibrated
//! [`QuantVnmMatrix`] (per-output-channel symmetric scales), its operand
//! stream condensed into a per-row `(i8 value, B row)` CSR — half the
//! bytes of the f32 stream — and the int8-priced launch (Table 1's
//! `Uint8` `mma.sp` row: half the operand bytes, double the k-depth per
//! instruction).
//!
//! Numerics contract, stated precisely because it differs from the f16
//! plans:
//!
//! * The **integer core** is exact: [`QuantSpmmPlan::run_i8`] equals
//!   [`QuantVnmMatrix::spmm_ref_i8`] (and [`venom_quant::gemm_ref_i8`]
//!   over the dense i8 plane) bit-for-bit, for any worker count —
//!   integer accumulation never rounds, so ordering is irrelevant.
//! * The **f16-facing surface** ([`crate::MatmulPlan`]) quantizes the
//!   activation operand per call at the boundary (one per-tensor scale
//!   under the plan's calibrator), runs the integer core, and dequantizes
//!   through the single expression `acc as f32 * (row_scale * act_scale)`
//!   — folded into the transpose/bias epilogue on the linear path. The
//!   planned and per-call paths share the quantizer and that expression,
//!   so they stay bit-identical *to each other*; versus the f16 oracle
//!   they carry the calibrator-bounded quantization error the accuracy
//!   suites measure.

use crate::descriptor::{DType, MatmulDescriptor};
use crate::matmul::MatmulPlan;
use crate::stage;
use rayon::prelude::*;
use venom_core::{SpmmOptions, TileConfig};
use venom_format::{MatmulFormat, QuantVnmMatrix, VnmMatrix};
use venom_fp16::Half;
use venom_quant::{calibrate, Calibration};
use venom_sim::pipeline::KernelCounts;
use venom_sim::{DeviceConfig, KernelTiming};
use venom_tensor::Matrix;

/// Row height of one parallel task (matches the f32 stream's banding).
const BAND_ROWS: usize = 16;

/// The condensed int8 stream: CSR-like over quantized values, with
/// `srcs[i]` naming the RHS row each value multiplies.
///
/// Codes are stored widened to `i16` — the integer analogue of the f16
/// pipeline's f32 staging: an i8 x i8 product fits exactly in an i16
/// multiply, the operation SSE2-class vector units execute natively,
/// where a 32-bit integer multiply would fall back to scalar code. The
/// widening changes no value (`|code| <= 127`).
#[derive(Clone, Debug)]
struct IntStream {
    rows: usize,
    k: usize,
    row_ptr: Vec<u32>,
    vals: Vec<i16>,
    srcs: Vec<u32>,
}

impl IntStream {
    /// Condenses the quantized container into its operand stream (two
    /// visitor passes, like the f32 `Stream`).
    fn from_quant(a: &QuantVnmMatrix) -> Self {
        let (rows, k) = a.shape();
        let mut row_ptr = vec![0u32; rows + 1];
        a.for_each_operand_i8(&mut |r, _, _| row_ptr[r + 1] += 1);
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let nnz = row_ptr[rows] as usize;
        let mut vals = vec![0i16; nnz];
        let mut srcs = vec![0u32; nnz];
        let mut cursor: Vec<u32> = row_ptr[..rows].to_vec();
        a.for_each_operand_i8(&mut |r, q, s| {
            let i = cursor[r] as usize;
            vals[i] = q as i16;
            srcs[i] = s as u32;
            cursor[r] += 1;
        });
        IntStream {
            rows,
            k,
            row_ptr,
            vals,
            srcs,
        }
    }

    fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Accumulates one output row's stream chain into `orow` — THE
    /// integer kernel: a 4-way-unrolled walk multiplying i16 codes
    /// (exact: both factors are i8-ranged) before the widening add, the
    /// shape baseline vector ISAs execute without a 32-bit integer
    /// multiply. Both run paths call this one body, which is what keeps
    /// fused-dequant and plain runs bit-identical by construction.
    #[inline]
    fn accumulate_row(&self, r: usize, b_i16: &[i16], b_cols: usize, orow: &mut [i32]) {
        let lo = self.row_ptr[r] as usize;
        let hi = self.row_ptr[r + 1] as usize;
        let mut s = lo;
        while s + 4 <= hi {
            let v0 = self.vals[s];
            let v1 = self.vals[s + 1];
            let v2 = self.vals[s + 2];
            let v3 = self.vals[s + 3];
            let b0 = &b_i16[self.srcs[s] as usize * b_cols..][..b_cols];
            let b1 = &b_i16[self.srcs[s + 1] as usize * b_cols..][..b_cols];
            let b2 = &b_i16[self.srcs[s + 2] as usize * b_cols..][..b_cols];
            let b3 = &b_i16[self.srcs[s + 3] as usize * b_cols..][..b_cols];
            for (j, o) in orow.iter_mut().enumerate() {
                *o += (v0 * b0[j]) as i32
                    + (v1 * b1[j]) as i32
                    + (v2 * b2[j]) as i32
                    + (v3 * b3[j]) as i32;
            }
            s += 4;
        }
        for (vq, src) in self.vals[s..hi].iter().zip(&self.srcs[s..hi]) {
            let vi = *vq;
            let brow = &b_i16[*src as usize * b_cols..][..b_cols];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += (vi * bv) as i32;
            }
        }
    }

    /// `C = A * B` over a staged RHS (`k x b_cols`, row-major i16 codes)
    /// into `out` (`rows x b_cols` i32, zero-initialised). Accumulation
    /// is exact, so neither the banding parallelism nor the unroll can
    /// change a bit.
    fn run_into(&self, b_i16: &[i16], b_cols: usize, out: &mut [i32]) {
        assert_eq!(b_i16.len(), self.k * b_cols, "staged RHS size mismatch");
        assert_eq!(out.len(), self.rows * b_cols, "output size mismatch");
        out.par_chunks_mut(BAND_ROWS * b_cols)
            .enumerate()
            .for_each(|(band, chunk)| {
                let row0 = band * BAND_ROWS;
                for (i, orow) in chunk.chunks_mut(b_cols).enumerate() {
                    self.accumulate_row(row0 + i, b_i16, b_cols, orow);
                }
            });
    }

    fn run(&self, b_i16: &[i16], b_cols: usize) -> Matrix<i32> {
        let mut out = vec![0i32; self.rows * b_cols];
        self.run_into(b_i16, b_cols, &mut out);
        Matrix::from_vec(self.rows, b_cols, out)
    }

    /// [`Self::run`] with the dequantization fused into the band loop:
    /// each band accumulates into a cache-resident i32 scratch and then
    /// writes `acc as f32 * scales[r]` straight into the f32 output —
    /// one pass over the 4-byte output instead of an i32 store pass plus
    /// a dequantize pass. The integer accumulation and the per-element
    /// dequant expression are exactly those of the unfused path, so the
    /// result is bit-identical to `run` followed by elementwise
    /// dequantization.
    fn run_dequant(&self, b_i16: &[i16], b_cols: usize, scales: &[f32]) -> Matrix<f32> {
        assert_eq!(b_i16.len(), self.k * b_cols, "staged RHS size mismatch");
        assert_eq!(scales.len(), self.rows, "one dequant scale per row");
        let mut out = vec![0.0f32; self.rows * b_cols];
        out.par_chunks_mut(BAND_ROWS * b_cols)
            .enumerate()
            .for_each(|(band, chunk)| {
                let row0 = band * BAND_ROWS;
                let band_rows = chunk.len() / b_cols;
                // The same accumulation kernel, into a cache-resident
                // band scratch.
                let mut acc = vec![0i32; band_rows * b_cols];
                for (i, arow) in acc.chunks_mut(b_cols).enumerate() {
                    self.accumulate_row(row0 + i, b_i16, b_cols, arow);
                }
                for (i, (orow, arow)) in
                    chunk.chunks_mut(b_cols).zip(acc.chunks(b_cols)).enumerate()
                {
                    let sc = scales[row0 + i];
                    for (o, &a) in orow.iter_mut().zip(arow) {
                        *o = a as f32 * sc;
                    }
                }
            });
        Matrix::from_vec(self.rows, b_cols, out)
    }
}

/// A plan for `C = A * B` with a static calibrated int8 V:N:M weight —
/// built once, run on every request with exact i32 accumulation.
#[derive(Clone, Debug)]
pub struct QuantSpmmPlan {
    weight: QuantVnmMatrix,
    stream: IntStream,
    desc: MatmulDescriptor,
    /// Per-call calibrator of the activation operand.
    act_calib: Calibration,
    tile: Option<TileConfig>,
    timing: Option<KernelTiming>,
    counts: Option<KernelCounts>,
}

impl QuantSpmmPlan {
    /// Quantizes a compressed f16 V:N:M weight under `weight_calib` and
    /// builds its int8 plan; prefer [`crate::Engine::plan_quant_spmm`].
    pub(crate) fn build(
        a: &VnmMatrix,
        weight_calib: Calibration,
        act_calib: Calibration,
        desc: MatmulDescriptor,
        opts: &SpmmOptions,
        dev: &DeviceConfig,
    ) -> Self {
        assert_eq!(
            a.shape(),
            (desc.out_features, desc.in_features),
            "weight shape does not match the descriptor"
        );
        let desc = desc.with_dtype(DType::I8);
        let weight = QuantVnmMatrix::quantize(a, weight_calib);
        let stream = IntStream::from_quant(&weight);
        let v = a.config().v;
        let (tile, timing, counts) = if v >= 16 && v.is_multiple_of(16) {
            let tile = opts
                .tile
                .unwrap_or_else(|| venom_core::autotune(a, desc.b_cols, opts, dev).0);
            let counts = venom_core::build_counts_i8(&weight, desc.b_cols, &tile, opts);
            let timing = venom_sim::pipeline::simulate(dev, &counts).unwrap_or_else(|e| {
                panic!(
                    "planned configuration {tile} cannot launch on {}: {e:?}",
                    dev.name
                )
            });
            (Some(tile), Some(timing), Some(counts))
        } else {
            (None, None, None)
        };
        QuantSpmmPlan {
            weight,
            stream,
            desc,
            act_calib,
            tile,
            timing,
            counts,
        }
    }

    /// The quantized weight the plan executes.
    pub fn weight(&self) -> &QuantVnmMatrix {
        &self.weight
    }

    /// Logical weight shape `(rows, k)`.
    pub fn shape(&self) -> (usize, usize) {
        self.weight.shape()
    }

    /// Stored nonzeros in the condensed int8 stream.
    pub fn nnz(&self) -> usize {
        self.stream.nnz()
    }

    /// The autotuned template instantiation (`None` for V < 16 patterns).
    pub fn tile(&self) -> Option<TileConfig> {
        self.tile
    }

    /// Int8 cost-model timing of one dispatch at the planned bound.
    pub fn timing(&self) -> Option<&KernelTiming> {
        self.timing.as_ref()
    }

    /// Priced int8 resource counts at the planned bound.
    pub fn counts(&self) -> Option<&KernelCounts> {
        self.counts.as_ref()
    }

    /// The per-call activation calibrator.
    pub fn activation_calibration(&self) -> Calibration {
        self.act_calib
    }

    /// The exact integer entry point: `C = A_q * B_q` with i32
    /// accumulation, bit-identical to
    /// [`QuantVnmMatrix::spmm_ref_i8`] on the planned weight (the codes
    /// are staged to i16 internally; `|code| <= 127` makes the widening
    /// value-preserving).
    ///
    /// # Panics
    /// Panics if `B` has a row count different from the planned K.
    pub fn run_i8(&self, b: &Matrix<i8>) -> Matrix<i32> {
        assert_eq!(
            b.rows(),
            self.stream.k,
            "B must have K = {} rows",
            self.stream.k
        );
        let staged: Vec<i16> = b.as_slice().iter().map(|&q| q as i16).collect();
        self.stream.run(&staged, b.cols())
    }

    /// Quantizes an activation operand with the plan's per-call
    /// calibrator: one per-tensor scale over the exactly-decoded halves.
    pub fn quantize_operand(&self, b: &Matrix<Half>) -> (Matrix<i8>, f32) {
        let (q, params) = venom_quant::quantize_slice(b.as_slice(), self.act_calib);
        (Matrix::from_vec(b.rows(), b.cols(), q), params.scale)
    }

    /// [`Self::quantize_operand`] staged directly to the i16 codes the
    /// stream consumes — numerically identical codes, one pass.
    fn quantize_operand_i16(&self, b: &Matrix<Half>) -> (Vec<i16>, f32) {
        let (q, params) = venom_quant::quantize_slice_i16(b.as_slice(), self.act_calib);
        (q, params.scale)
    }

    /// The dequantization factor of row `r` for an operand quantized at
    /// `act_scale` — the one expression every f32-facing path multiplies
    /// the integer accumulators by.
    #[inline]
    fn dequant_scale(&self, r: usize, act_scale: f32) -> f32 {
        self.weight.scales()[r] * act_scale
    }

    /// Dequantizes an integer result into f32 (`acc * row_scale *
    /// act_scale`, one rounding per element).
    fn dequantize(&self, acc: Matrix<i32>, act_scale: f32) -> Matrix<f32> {
        let (rows, cols) = (acc.rows(), acc.cols());
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let s = self.dequant_scale(r, act_scale);
            for (o, &a) in out[r * cols..(r + 1) * cols].iter_mut().zip(acc.row(r)) {
                *o = a as f32 * s;
            }
        }
        Matrix::from_vec(rows, cols, out)
    }
}

impl MatmulPlan for QuantSpmmPlan {
    fn format(&self) -> MatmulFormat {
        MatmulFormat::Vnm
    }

    fn descriptor(&self) -> &MatmulDescriptor {
        &self.desc
    }

    fn timing(&self) -> Option<&KernelTiming> {
        QuantSpmmPlan::timing(self)
    }

    fn stored_values(&self) -> usize {
        self.stream.nnz()
    }

    fn weight_dense(&self) -> Matrix<Half> {
        venom_format::SparseKernel::to_dense(&self.weight)
    }

    fn run(&self, b: &Matrix<Half>) -> Matrix<f32> {
        assert_eq!(
            b.rows(),
            self.stream.k,
            "B must have K = {} rows",
            self.stream.k
        );
        let (b_q, act_scale) = self.quantize_operand_i16(b);
        let scales: Vec<f32> = (0..self.stream.rows)
            .map(|r| self.dequant_scale(r, act_scale))
            .collect();
        self.stream.run_dequant(&b_q, b.cols(), &scales)
    }

    fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>> {
        if bs.is_empty() {
            return Vec::new();
        }
        let k = self.stream.k;
        let total: usize = bs.iter().map(|b| b.cols()).sum();
        // Each request keeps its own per-tensor scale; the concatenated
        // integer dispatch is column-independent, so one multiply and a
        // per-block dequantization is bit-identical to separate runs.
        let mut staged = vec![0i16; k * total];
        let mut scales = Vec::with_capacity(bs.len());
        let mut col0 = 0usize;
        for b in bs {
            assert_eq!(b.rows(), k, "B must have K = {k} rows");
            let (b_q, s) = self.quantize_operand_i16(b);
            scales.push(s);
            let cols = b.cols();
            for r in 0..k {
                staged[r * total + col0..r * total + col0 + cols]
                    .copy_from_slice(&b_q[r * cols..(r + 1) * cols]);
            }
            col0 += cols;
        }
        let acc = self.stream.run(&staged, total);
        let rows = self.stream.rows;
        let mut out = Vec::with_capacity(bs.len());
        let mut col0 = 0usize;
        for (b, &act_scale) in bs.iter().zip(&scales) {
            let cols = b.cols();
            let mut part = vec![0.0f32; rows * cols];
            for r in 0..rows {
                let s = self.dequant_scale(r, act_scale);
                let arow = &acc.as_slice()[r * total + col0..r * total + col0 + cols];
                for (o, &a) in part[r * cols..(r + 1) * cols].iter_mut().zip(arow) {
                    *o = a as f32 * s;
                }
            }
            out.push(Matrix::from_vec(rows, cols, part));
            col0 += cols;
        }
        out
    }

    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(x.cols(), self.stream.k, "input features mismatch");
        let staged = stage::stage_activations_t(x);
        self.run_linear_staged(&staged, x.rows(), bias)
    }

    fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32> {
        assert_eq!(
            staged.len(),
            self.stream.k * tokens,
            "staged operand size mismatch"
        );
        assert_eq!(bias.len(), self.stream.rows, "bias must match out_features");
        // The staged buffer holds exact f16 decodes, so calibrating it
        // equals calibrating the half operand, and mapping each value's
        // f16 bits through the code table lands on the same codes the
        // per-call chain gets.
        let params = calibrate(staged, self.act_calib);
        let table = venom_quant::quant_code_table(params);
        let b_q: Vec<i16> = staged
            .iter()
            .map(|&v| table[venom_fp16::f32_to_f16_bits(v) as usize] as i16)
            .collect();
        let mut acc = vec![0i32; self.stream.rows * tokens];
        self.stream.run_into(&b_q, tokens, &mut acc);
        // Dequantization folded into the tiled transpose+bias epilogue:
        // y[t][r] = acc[r][t] * s_r + bias[r], the exact expression of
        // the per-call chain (`run_oneshot` dequant, transpose, bias).
        const TILE: usize = 32;
        let rows = self.stream.rows;
        let mut y = vec![0.0f32; tokens * rows];
        for t0 in (0..tokens).step_by(TILE) {
            let t1 = (t0 + TILE).min(tokens);
            for r0 in (0..rows).step_by(TILE) {
                let r1 = (r0 + TILE).min(rows);
                for t in t0..t1 {
                    let yrow = &mut y[t * rows..][r0..r1];
                    for (r, o) in (r0..r1).zip(yrow.iter_mut()) {
                        *o = acc[r * tokens + t] as f32 * self.dequant_scale(r, params.scale)
                            + bias[r];
                    }
                }
            }
        }
        Matrix::from_vec(tokens, rows, y)
    }

    fn run_oneshot(&self, b: &Matrix<Half>) -> Matrix<f32> {
        // Per-call: re-quantize the operand and run the container's own
        // parallel integer kernel, then dequantize through the shared
        // expression — bit-identical to the planned `run`.
        let (b_q, act_scale) = self.quantize_operand(b);
        let acc = self.weight.spmm_parallel_i8(&b_q);
        self.dequantize(acc, act_scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venom_format::{SparsityMask, VnmConfig};
    use venom_quant::gemm_ref_i8;
    use venom_tensor::random;

    fn dev() -> DeviceConfig {
        DeviceConfig::rtx3090()
    }

    fn vnm_fixture(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> VnmMatrix {
        let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
        let mask = SparsityMask::from_fn(r, k, |_, c| c % cfg.m < cfg.n);
        VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg)
    }

    fn build(a: &VnmMatrix, b_cols: usize) -> QuantSpmmPlan {
        let desc = MatmulDescriptor::new(a.shape().0, a.shape().1).with_b_cols(b_cols);
        QuantSpmmPlan::build(
            a,
            Calibration::AbsMax,
            Calibration::AbsMax,
            desc,
            &SpmmOptions::default(),
            &dev(),
        )
    }

    #[test]
    fn integer_core_is_bit_identical_to_the_i8_oracle() {
        let a = vnm_fixture(70, 93, VnmConfig::new(16, 2, 10), 1);
        let plan = build(&a, 64);
        let b = Matrix::from_fn(93, 37, |r, c| ((r * 19 + c * 7) % 255) as i32 as u8 as i8);
        let got = plan.run_i8(&b);
        assert_eq!(got, plan.weight().spmm_ref_i8(&b));
        assert_eq!(got, gemm_ref_i8(&plan.weight().dense_i8(), &b));
    }

    #[test]
    fn planned_and_per_call_paths_are_bit_identical() {
        let a = vnm_fixture(64, 64, VnmConfig::new(32, 2, 8), 2);
        let plan = build(&a, 32);
        let b = random::normal_matrix(64, 13, 0.0, 1.0, 3).to_half();
        assert_eq!(MatmulPlan::run(&plan, &b), plan.run_oneshot(&b));
    }

    #[test]
    fn batched_run_matches_separate_runs() {
        let a = vnm_fixture(48, 64, VnmConfig::new(16, 2, 8), 4);
        let plan = build(&a, 48);
        let b1 = random::normal_matrix(64, 11, 0.0, 1.0, 5).to_half();
        let b2 = random::normal_matrix(64, 24, 0.0, 1.0, 6).to_half();
        let batch = plan.run_batch(&[&b1, &b2]);
        assert_eq!(batch[0], MatmulPlan::run(&plan, &b1));
        assert_eq!(batch[1], MatmulPlan::run(&plan, &b2));
    }

    #[test]
    fn fused_linear_matches_the_per_call_chain() {
        let a = vnm_fixture(32, 48, VnmConfig::new(16, 2, 8), 7);
        let plan = build(&a, 32);
        let bias: Vec<f32> = (0..32).map(|i| i as f32 * 0.25 - 4.0).collect();
        let x = random::activation_matrix(19, 48, 8);
        assert_eq!(
            plan.run_linear(&x, &bias),
            MatmulPlan::run_linear_percall(&plan, &x, &bias)
        );
    }

    #[test]
    fn descriptor_reports_i8_and_pricing_beats_f16() {
        let a = vnm_fixture(128, 1024, VnmConfig::new(64, 2, 8), 9);
        let plan = build(&a, 1024);
        assert_eq!(plan.descriptor().dtype, DType::I8);
        let t8 = plan.timing().expect("launchable V is priced").time_ms;
        let f16 = crate::plan::SpmmPlan::build(
            &a,
            MatmulDescriptor::new(128, 1024).with_b_cols(1024),
            &SpmmOptions::default(),
            &dev(),
        );
        let t16 = f16.timing().expect("priced").time_ms;
        assert!(t8 > 0.0 && t8 < t16, "i8 {t8} !< f16 {t16}");
    }

    #[test]
    fn sub_fragment_v_still_executes_exactly() {
        let a = vnm_fixture(24, 40, VnmConfig::new(8, 2, 8), 10);
        let plan = build(&a, 16);
        assert!(plan.tile().is_none());
        let b = Matrix::from_fn(40, 9, |r, c| ((r + c * 3) % 100) as i8);
        assert_eq!(plan.run_i8(&b), plan.weight().spmm_ref_i8(&b));
    }

    #[test]
    fn dequantized_output_tracks_the_f16_oracle() {
        // Sanity (the precise bound check lives in the conformance
        // suite): absmax-quantized output stays close to the f16 path.
        let a = vnm_fixture(64, 80, VnmConfig::new(16, 2, 10), 11);
        let plan = build(&a, 16);
        let b = random::normal_matrix(80, 16, 0.0, 1.0, 12).to_half();
        let got = MatmulPlan::run(&plan, &b);
        let oracle = a.spmm_ref(&b);
        let rel = venom_tensor::norms::rel_frobenius_error(&got, &oracle);
        assert!(rel < 0.05, "relative error {rel} too large");
    }
}
