//! The [`Engine`]: the factory that builds execution plans against one
//! target device — including the automatic format selection of the
//! unified matmul surface.

use crate::descriptor::{DType, MatmulDescriptor};
use crate::matmul::{MatmulPlan, PlanError};
use crate::plan::{BandPlan, FormatPlan, GemmPlan, SpmmPlan};
use crate::pricing;
use crate::qplan::QuantSpmmPlan;
use std::sync::Arc;
use venom_core::SpmmOptions;
use venom_format::{
    BlockedEllMatrix, CsrMatrix, CvseMatrix, MatmulFormat, NmCompressed, NmConfig, SparsityMask,
    VnmConfig, VnmMatrix,
};
use venom_fp16::Half;
use venom_quant::Calibration;
use venom_sim::DeviceConfig;
use venom_tensor::Matrix;

/// Vector heights `plan_auto` probes for V:N:M compliance, largest (most
/// reuse) first. All are kernel-launchable multiples of 16.
const AUTO_V: [usize; 4] = [128, 64, 32, 16];

/// Group widths probed for N = 2 compliance, sparsest first, so the
/// first complying pattern is the cheapest-to-execute one.
const AUTO_M: [usize; 7] = [100, 40, 20, 16, 10, 8, 4];

/// Vector lengths probed for the CVSE encoding.
const AUTO_CVSE_L: [usize; 3] = [16, 8, 4];

/// Block sizes probed for Blocked-ELL (must divide both dimensions).
const AUTO_ELL_BS: [usize; 4] = [32, 16, 8, 4];

/// Builds plans for one device configuration. Cheap to clone; layers and
/// models hold the plans, not the engine.
#[derive(Clone, Debug)]
pub struct Engine {
    dev: DeviceConfig,
    opts: SpmmOptions,
    b_cols_hint: usize,
    calibration: Calibration,
}

impl Engine {
    /// Default output-column bound plans are tuned for when the caller
    /// gives none: the BERT evaluation sequence length of the paper.
    pub const DEFAULT_B_COLS_HINT: usize = MatmulDescriptor::DEFAULT_B_COLS;

    /// An engine targeting `dev` with default options (int8 plans
    /// calibrate with [`Calibration::AbsMax`] unless overridden).
    pub fn new(dev: DeviceConfig) -> Self {
        Engine {
            dev,
            opts: SpmmOptions::default(),
            b_cols_hint: Self::DEFAULT_B_COLS_HINT,
            calibration: Calibration::AbsMax,
        }
    }

    /// Overrides the output-column bound used by [`Self::plan_spmm`],
    /// [`Self::plan_gemm`] and [`Self::descriptor`].
    #[must_use]
    pub fn with_b_cols_hint(mut self, b_cols: usize) -> Self {
        self.b_cols_hint = b_cols;
        self
    }

    /// Overrides the kernel options plans are priced with (column-loc /
    /// epilogue ablations, explicit tile).
    #[must_use]
    pub fn with_options(mut self, opts: SpmmOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Overrides the calibrator int8 plans quantize weights and
    /// activations with.
    #[must_use]
    pub fn with_calibration(mut self, calibration: Calibration) -> Self {
        self.calibration = calibration;
        self
    }

    /// The calibrator of the engine's int8 plans.
    pub fn calibration(&self) -> Calibration {
        self.calibration
    }

    /// The target device.
    pub fn device(&self) -> &DeviceConfig {
        &self.dev
    }

    /// The column bound [`Self::plan_spmm`] tunes for.
    pub fn b_cols_hint(&self) -> usize {
        self.b_cols_hint
    }

    /// A descriptor for a `out x in` weight at the engine's column hint.
    pub fn descriptor(&self, out_features: usize, in_features: usize) -> MatmulDescriptor {
        MatmulDescriptor::new(out_features, in_features).with_b_cols(self.b_cols_hint)
    }

    /// Plans a V:N:M SpMM at the engine's column hint.
    pub fn plan_spmm(&self, a: &VnmMatrix) -> SpmmPlan {
        self.plan_spmm_bounded(a, self.b_cols_hint)
    }

    /// Plans a V:N:M SpMM tuned and priced for up to `b_cols_bound`
    /// output columns (wider runs stay exact; only the captured pricing
    /// assumes the bound).
    pub fn plan_spmm_bounded(&self, a: &VnmMatrix, b_cols_bound: usize) -> SpmmPlan {
        let (r, k) = a.shape();
        let desc = MatmulDescriptor::new(r, k).with_b_cols(b_cols_bound);
        SpmmPlan::build(a, desc, &self.opts, &self.dev)
    }

    /// Quantizes a compressed V:N:M weight with the engine's calibrator
    /// and plans its i32-accumulating int8 dispatch at the engine's
    /// column hint.
    pub fn plan_quant_spmm(&self, a: &VnmMatrix) -> QuantSpmmPlan {
        self.plan_quant_spmm_bounded(a, self.b_cols_hint)
    }

    /// [`Self::plan_quant_spmm`] tuned and priced for up to
    /// `b_cols_bound` output columns.
    pub fn plan_quant_spmm_bounded(&self, a: &VnmMatrix, b_cols_bound: usize) -> QuantSpmmPlan {
        let (r, k) = a.shape();
        let desc = MatmulDescriptor::new(r, k)
            .with_b_cols(b_cols_bound)
            .with_dtype(DType::I8);
        QuantSpmmPlan::build(
            a,
            self.calibration,
            self.calibration,
            desc,
            &self.opts,
            &self.dev,
        )
    }

    /// Plans a dense GEMM priced on the cuBLAS model for this engine's
    /// device at the engine's column hint — the same pricing seam sparse
    /// plans get, so dense-vs-sparse comparisons in [`Self::plan_auto`]
    /// are fair.
    pub fn plan_gemm(&self, w: &Matrix<Half>) -> GemmPlan {
        self.plan_gemm_bounded(w, self.b_cols_hint)
    }

    /// [`Self::plan_gemm`] priced for up to `b_cols_bound` output columns.
    pub fn plan_gemm_bounded(&self, w: &Matrix<Half>, b_cols_bound: usize) -> GemmPlan {
        let desc = MatmulDescriptor::for_weight(w).with_b_cols(b_cols_bound);
        GemmPlan::build(w, desc, &self.dev)
    }

    /// Plans `weights` in an explicitly chosen storage format.
    ///
    /// The weight's *nonzero structure* decides eligibility: `vnm` and
    /// `nm` require the zeros to comply with a supported pattern
    /// (`V:2:M` over the probed grid, resp. the hardware 2:4);
    /// `blocked-ell` requires a block size dividing both dimensions;
    /// `csr`, `cvse` and `dense` accept anything. The descriptor's
    /// *dtype* decides the execution path on top: `i8` descriptors plan
    /// the calibrated quantized container, which only the V:N:M format
    /// implements — any other format reports the dtype as ineligible.
    ///
    /// # Errors
    /// Returns [`PlanError::Incompatible`] with the reason when the
    /// weights cannot be served in `format` (structure mismatch, or an
    /// `i8` descriptor on a format with no int8 path).
    ///
    /// # Panics
    /// Panics if `weights` does not match the descriptor's shape.
    pub fn plan_with_format(
        &self,
        format: MatmulFormat,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
    ) -> Result<Arc<dyn MatmulPlan>, PlanError> {
        desc.assert_matches(weights);
        if desc.dtype == DType::I8 {
            return match format {
                MatmulFormat::Vnm => self.plan_vnm_i8(desc, weights, None),
                other => Err(PlanError::Incompatible {
                    format: other,
                    reason: format!(
                        "dtype i8 is ineligible for '{other}': the int8 path \
                         (i32-accumulating stream, Uint8 mma.sp pricing) is only \
                         implemented for the quantized V:N:M container — \
                         request format 'vnm' or dtype 'f16'"
                    ),
                }),
            };
        }
        let incompatible = |reason: String| PlanError::Incompatible { format, reason };
        match format {
            MatmulFormat::Dense => Ok(Arc::new(GemmPlan::build(weights, *desc, &self.dev))),
            MatmulFormat::Vnm => self.plan_vnm_detected(desc, weights, None),
            MatmulFormat::Nm => {
                let mask = nonzero_mask(weights);
                let nm = NmConfig::new(2, 4);
                if !mask.complies_nm(nm) {
                    return Err(incompatible(
                        "nonzero pattern violates the hardware 2:4 pattern cuSPARSELt consumes"
                            .to_string(),
                    ));
                }
                let a = NmCompressed::compress(weights, &mask, nm);
                let counts = pricing::nm_counts(&a, desc.b_cols);
                let timing = pricing::price_nm(&a, desc.b_cols, &self.dev);
                Ok(Arc::new(FormatPlan::build_counted(
                    Arc::new(a),
                    *desc,
                    Some(timing),
                    Some(counts),
                )))
            }
            MatmulFormat::Csr => {
                let a = CsrMatrix::from_dense(weights);
                let counts = pricing::csr_counts(&a, desc.b_cols);
                let timing = pricing::price_csr(&a, desc.b_cols, &self.dev);
                Ok(Arc::new(FormatPlan::build_counted(
                    Arc::new(a),
                    *desc,
                    Some(timing),
                    Some(counts),
                )))
            }
            MatmulFormat::Cvse => {
                // Probe the vector-length ladder and keep the cheapest
                // encoding (the format's one tuning knob).
                let best = AUTO_CVSE_L
                    .iter()
                    .map(|&l| {
                        let a = CvseMatrix::from_dense(weights, l);
                        let t = pricing::price_cvse(&a, desc.b_cols, &self.dev);
                        (a, t)
                    })
                    .min_by(|x, y| pricing::cost_cmp(x.1.time_ms, y.1.time_ms))
                    .expect("the ladder is nonempty");
                let counts = pricing::cvse_counts(&best.0, desc.b_cols);
                Ok(Arc::new(FormatPlan::build_counted(
                    Arc::new(best.0),
                    *desc,
                    Some(best.1),
                    Some(counts),
                )))
            }
            MatmulFormat::BlockedEll => {
                let (r, k) = (weights.rows(), weights.cols());
                let bs = AUTO_ELL_BS
                    .iter()
                    .copied()
                    .find(|&bs| r % bs == 0 && k % bs == 0)
                    .ok_or_else(|| {
                        incompatible(format!(
                            "no probed block size {AUTO_ELL_BS:?} divides both {r} and {k}"
                        ))
                    })?;
                let a = BlockedEllMatrix::from_dense(weights, bs);
                let counts = pricing::blocked_ell_counts(&a, desc.b_cols);
                let timing = pricing::price_blocked_ell(&a, desc.b_cols, &self.dev);
                Ok(Arc::new(FormatPlan::build_counted(
                    Arc::new(a),
                    *desc,
                    Some(timing),
                    Some(counts),
                )))
            }
        }
    }

    /// Detects a complying V:2:M pattern and compresses, preferring a
    /// caller-supplied pattern over grid re-detection (a pruner that
    /// knows its pattern should not depend on the probed grid containing
    /// it).
    fn compress_vnm_detected(
        &self,
        weights: &Matrix<Half>,
        pattern: Option<VnmConfig>,
    ) -> Result<VnmMatrix, PlanError> {
        let mask = nonzero_mask(weights);
        let cfg = pattern
            .filter(|&cfg| mask.complies_vnm(cfg))
            .or_else(|| self.vnm_candidates(&mask, weights).into_iter().next())
            .ok_or_else(|| PlanError::Incompatible {
                format: MatmulFormat::Vnm,
                reason: format!(
                    "nonzero pattern complies with no probed V:2:M pattern \
                     (V in {AUTO_V:?}, M in {AUTO_M:?})"
                ),
            })?;
        Ok(VnmMatrix::compress(weights, &mask, cfg))
    }

    /// Plans the f16 V:N:M format over the detected (or hinted) pattern.
    fn plan_vnm_detected(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
        pattern: Option<VnmConfig>,
    ) -> Result<Arc<dyn MatmulPlan>, PlanError> {
        let a = self.compress_vnm_detected(weights, pattern)?;
        Ok(Arc::new(SpmmPlan::build(&a, *desc, &self.opts, &self.dev)))
    }

    /// Plans the bandwidth-optimized non-mma V:N:M band path explicitly.
    ///
    /// [`Self::plan_auto`] already considers this path as a candidate
    /// and routes memory-bound shapes to it; this forces it (the CLI's
    /// `--format band`). The plan executes the FlashSparse-style
    /// swapped-operand replay and is priced on the CUDA-core DRAM
    /// roofline.
    ///
    /// # Errors
    /// [`PlanError::Incompatible`] when the nonzero structure complies
    /// with no V:2:M pattern, when `K` exceeds the band stream's 16-bit
    /// source-index range, or on an `i8` descriptor (the band replay
    /// streams f16 values).
    ///
    /// # Panics
    /// Panics if `weights` does not match the descriptor's shape.
    pub fn plan_band(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
    ) -> Result<Arc<dyn MatmulPlan>, PlanError> {
        self.plan_band_hinted(desc, weights, None)
    }

    /// [`Self::plan_band`] with a known prune pattern (same contract as
    /// [`Self::plan_auto_hinted`]).
    pub fn plan_band_hinted(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
        pattern: Option<VnmConfig>,
    ) -> Result<Arc<dyn MatmulPlan>, PlanError> {
        desc.assert_matches(weights);
        if desc.dtype == DType::I8 {
            return Err(PlanError::Incompatible {
                format: MatmulFormat::Vnm,
                reason: "dtype i8 is ineligible for the band path: the band stream \
                         replays f16 values — request dtype 'f16' or format 'vnm'"
                    .to_string(),
            });
        }
        let a = self.compress_vnm_detected(weights, pattern)?;
        Ok(Arc::new(BandPlan::build(&a, *desc, &self.dev)?))
    }

    /// Plans the int8-quantized V:N:M container over the detected (or
    /// hinted) pattern, calibrated with the engine's calibrator.
    fn plan_vnm_i8(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
        pattern: Option<VnmConfig>,
    ) -> Result<Arc<dyn MatmulPlan>, PlanError> {
        let a = self.compress_vnm_detected(weights, pattern)?;
        Ok(Arc::new(QuantSpmmPlan::build(
            &a,
            self.calibration,
            self.calibration,
            *desc,
            &self.opts,
            &self.dev,
        )))
    }

    /// Plans `weights` in the cost-model-cheapest eligible format.
    ///
    /// Every format the nonzero structure is eligible for is compressed,
    /// tuned (V:N:M autotunes its template space, CVSE its vector
    /// length) and priced for the descriptor's shape on this engine's
    /// device; the cheapest plan wins. The dense path always competes,
    /// so a weight that is not sparse enough to pay off simply plans
    /// dense — the FlashSparse-style per-shape layout choice. V:N:M
    /// weights field *two* candidates: the Spatha `mma.sp` stream and
    /// the bandwidth-optimized band replay ([`BandPlan`]) — both priced
    /// in DRAM bytes, so memory-bound shapes (small `b_cols`,
    /// tall-skinny weights) route to the non-mma path at the device's
    /// ridge point.
    ///
    /// The descriptor's dtype widens the candidate set: an `i8`
    /// descriptor *allows* the quantized int8 V:N:M plan, which is then
    /// priced against every f16 format on the same currency — so auto
    /// mode compares f16 vs i8 and a weight with no complying V:N:M
    /// structure still plans in the cheapest f16 format instead of
    /// failing.
    ///
    /// # Panics
    /// Panics if `weights` does not match the descriptor's shape.
    pub fn plan_auto(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
    ) -> Arc<dyn MatmulPlan> {
        self.plan_auto_hinted(desc, weights, None)
    }

    /// [`Self::plan_auto`] with a known prune pattern: when the caller
    /// pruned the weights itself (e.g. a magnitude V:N:M pruner), the
    /// pattern seeds the V:N:M candidate directly instead of relying on
    /// the probed re-detection grid — so patterns outside the grid
    /// (other N, unusual M) still compete as V:N:M.
    ///
    /// # Panics
    /// Panics if `weights` does not match the descriptor's shape.
    pub fn plan_auto_hinted(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
        pattern: Option<VnmConfig>,
    ) -> Arc<dyn MatmulPlan> {
        self.auto_candidates(desc, weights, pattern)
            .into_iter()
            .min_by(|a, b| {
                let ca = a.cost_ms().unwrap_or(f64::INFINITY);
                let cb = b.cost_ms().unwrap_or(f64::INFINITY);
                pricing::cost_cmp(ca, cb)
            })
            .expect("the dense path is always eligible")
    }

    /// Packages this engine's planning as the *fallible builder* the
    /// serving stack consumes ([`crate::Server::register_fallible`] /
    /// [`crate::Server::register_degradable`], the [`crate::PlanCache`]
    /// deadline path): the returned closure owns a clone of the engine
    /// plus the planning inputs, replans on every call, and maps
    /// [`PlanError`] onto the reason string the server's retry and
    /// degradation machinery surfaces in
    /// [`crate::ServeError::BuildFailed`].
    ///
    /// # Panics
    /// The *returned closure* panics if `weights` does not match the
    /// descriptor's shape (same contract as [`Self::plan_with_format`]).
    pub fn serve_builder(
        &self,
        format: MatmulFormat,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
    ) -> impl Fn() -> Result<Arc<dyn MatmulPlan>, String> + Send + Sync + 'static {
        let engine = self.clone();
        let desc = *desc;
        let weights = weights.clone();
        move || {
            engine
                .plan_with_format(format, &desc, &weights)
                .map_err(|e| e.to_string())
        }
    }

    /// Plans the activation-side attention pipeline for one
    /// `(seq, hidden, heads, mask)` shape: SDDMM over the mask's
    /// condensed gather order, masked softmax over the compressed
    /// scores, and the `P·V` contraction — priced on
    /// `sddmm_counts`-derived counts with the mma-vs-swapped schedule
    /// flip decided by simulated cost (see [`crate::AttentionPlan`]).
    ///
    /// # Errors
    /// [`PlanError::Unplannable`] on a degenerate shape (zero sequence,
    /// heads not dividing hidden) or mask parameters (zero window/block).
    pub fn plan_attention(
        &self,
        seq: usize,
        hidden: usize,
        heads: usize,
        mask: &crate::AttentionMask,
    ) -> Result<Arc<crate::AttentionPlan>, PlanError> {
        crate::AttentionPlan::build(seq, hidden, heads, *mask, &self.dev).map(Arc::new)
    }

    /// [`Self::plan_attention`] through an [`crate::AttnPlanCache`]:
    /// the `(shape, mask)` key is looked up first and the plan is built
    /// at most once per key across every layer and request sharing the
    /// cache.
    ///
    /// # Errors
    /// Propagates [`PlanError`] from the build; failures are not cached.
    pub fn plan_attention_cached(
        &self,
        seq: usize,
        hidden: usize,
        heads: usize,
        mask: &crate::AttentionMask,
        cache: &crate::AttnPlanCache,
    ) -> Result<Arc<crate::AttentionPlan>, PlanError> {
        let key = crate::attn::attention_key(seq, hidden, heads, mask);
        let mask = *mask;
        let dev = self.dev.clone();
        cache.get_or_build(key, move || {
            crate::AttentionPlan::build(seq, hidden, heads, mask, &dev)
        })
    }

    /// Packages attention planning as the fallible builder shape the
    /// serving stack consumes — the attention sibling of
    /// [`Self::serve_builder`]: the closure owns a clone of the engine
    /// and the planning inputs, replans on every call, and maps
    /// [`PlanError`] onto the reason string the server surfaces.
    pub fn attention_builder(
        &self,
        seq: usize,
        hidden: usize,
        heads: usize,
        mask: &crate::AttentionMask,
    ) -> impl Fn() -> Result<Arc<crate::AttentionPlan>, String> + Send + Sync + 'static {
        let engine = self.clone();
        let mask = *mask;
        move || {
            engine
                .plan_attention(seq, hidden, heads, &mask)
                .map_err(|e| e.to_string())
        }
    }

    /// [`Self::plan_auto`] with a measured micro-autotune: every eligible
    /// candidate plan is additionally *run* `iters` times on a synthetic
    /// probe operand, and the lowest measured wall-clock wins. Slower to
    /// plan, but immune to cost-model bias on the functional CPU path.
    ///
    /// # Panics
    /// Panics if `iters` is zero or the shapes mismatch.
    pub fn plan_auto_measured(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
        iters: usize,
    ) -> Arc<dyn MatmulPlan> {
        assert!(
            iters >= 1,
            "the micro-autotune needs at least one iteration"
        );
        // A small deterministic probe: measuring at full bound would make
        // planning cost as much as serving.
        let probe_cols = desc.b_cols.clamp(1, 32);
        let probe = Matrix::from_fn(desc.in_features, probe_cols, |r, c| {
            ((r * 31 + c * 17) % 13) as f32 * 0.17 - 1.0
        })
        .to_half();
        self.auto_candidates(desc, weights, None)
            .into_iter()
            .map(|plan| {
                let _ = plan.run(&probe); // warm-up primes tables and pools
                let mut best = f64::INFINITY;
                for _ in 0..iters {
                    let t0 = std::time::Instant::now();
                    std::hint::black_box(plan.run(&probe));
                    best = best.min(t0.elapsed().as_secs_f64());
                }
                (plan, best)
            })
            .min_by(|a, b| pricing::cost_cmp(a.1, b.1))
            .expect("the dense path is always eligible")
            .0
    }

    /// Every plan the weight structure is eligible for, priced; the
    /// V:N:M candidate honours a caller-supplied pattern hint, and an
    /// `i8` descriptor adds the quantized V:N:M candidate to the pool.
    fn auto_candidates(
        &self,
        desc: &MatmulDescriptor,
        weights: &Matrix<Half>,
        pattern: Option<VnmConfig>,
    ) -> Vec<Arc<dyn MatmulPlan>> {
        let f16_desc = desc.with_dtype(DType::F16);
        // Detect and compress the V:N:M structure once; the f16 and (for
        // i8 descriptors) quantized candidates share the compression and
        // the autotuned tile instead of redoing mask detection and the
        // template sweep per candidate.
        let f16_vnm = self
            .compress_vnm_detected(weights, pattern)
            .ok()
            .map(|a| (SpmmPlan::build(&a, f16_desc, &self.opts, &self.dev), a));
        let mut out: Vec<Arc<dyn MatmulPlan>> = Vec::new();
        if desc.dtype == DType::I8 {
            if let Some((f16_plan, a)) = &f16_vnm {
                // Seed the i8 build with the f16 plan's autotuned tile:
                // the sweep is deterministic on the same inputs, so this
                // removes the repeated work without changing the result.
                let opts = SpmmOptions {
                    tile: f16_plan.tile().or(self.opts.tile),
                    ..self.opts
                };
                out.push(Arc::new(QuantSpmmPlan::build(
                    a,
                    self.calibration,
                    self.calibration,
                    *desc,
                    &opts,
                    &self.dev,
                )));
            }
        }
        for &f in &MatmulFormat::ALL {
            match f {
                MatmulFormat::Vnm => {
                    if let Some((plan, a)) = &f16_vnm {
                        out.push(Arc::new(plan.clone()));
                        // The bandwidth-optimized non-mma variant competes
                        // over the same compression: its DRAM-byte pricing
                        // undercuts the mma stream left of the ridge point,
                        // so routing flips there — no hard-coded threshold.
                        if let Ok(band) = BandPlan::build(a, f16_desc, &self.dev) {
                            out.push(Arc::new(band));
                        }
                    }
                }
                _ => {
                    if let Ok(plan) = self.plan_with_format(f, &f16_desc, weights) {
                        out.push(plan);
                    }
                }
            }
        }
        out
    }

    /// The V:2:M patterns the nonzero mask complies with, best (largest
    /// V, sparsest M) first. A pattern with larger V also complies at
    /// every smaller probed V, so the first hit is the strongest
    /// structure the weight actually has.
    fn vnm_candidates(&self, mask: &SparsityMask, weights: &Matrix<Half>) -> Vec<VnmConfig> {
        let (r, k) = (weights.rows(), weights.cols());
        let mut out = Vec::new();
        for &v in AUTO_V.iter().filter(|&&v| v <= r) {
            for &m in AUTO_M.iter().filter(|&&m| m <= k) {
                let cfg = VnmConfig::new(v, 2, m);
                if mask.complies_vnm(cfg) {
                    out.push(cfg);
                }
            }
            if !out.is_empty() {
                break; // smaller V adds no structure the largest V lacks
            }
        }
        out
    }
}

/// The mask of stored nonzeros — the structure `plan_auto` inspects.
fn nonzero_mask(w: &Matrix<Half>) -> SparsityMask {
    SparsityMask::from_fn(w.rows(), w.cols(), |r, c| !w.get(r, c).is_zero())
}

#[cfg(test)]
mod tests {
    use super::*;
    use venom_pruner::magnitude;
    use venom_tensor::random;

    fn vnm_weight(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> Matrix<Half> {
        let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
        let mask = magnitude::prune_vnm(&w, cfg);
        mask.apply_f32(&w).to_half()
    }

    #[test]
    fn engine_builds_tuned_plans() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(128);
        let w = random::normal_matrix(64, 128, 0.0, 1.0, 1);
        let cfg = VnmConfig::new(32, 2, 8);
        let mask = magnitude::prune_vnm(&w, cfg);
        let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
        let plan = engine.plan_spmm(&a);
        assert_eq!(plan.b_cols_bound(), 128);
        let tile = plan.tile().expect("V = 32 is kernel-launchable");
        assert_eq!(tile.bs_r, 32);
        assert!(plan.timing().expect("priced at build").time_ms > 0.0);
    }

    #[test]
    fn plan_auto_survives_degenerate_weights() {
        // Regression for the NaN-unsafe cost comparisons: selection used
        // to `partial_cmp(..).unwrap()`, so any candidate whose priced
        // cost came out NaN panicked `plan_auto` mid-`min_by`. Degenerate
        // inputs (an all-zero weight has zero stored values everywhere)
        // must instead plan cleanly, and measured autotuning — whose
        // comparator had the same bug — must survive them too.
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(32);
        let zero = Matrix::from_fn(64, 64, |_, _| 0.0f32).to_half();
        let desc = engine.descriptor(64, 64);
        let plan = engine.plan_auto(&desc, &zero);
        let b = random::normal_matrix(64, 8, 0.0, 1.0, 7).to_half();
        assert!(plan.run(&b).as_slice().iter().all(|&v| v == 0.0));
        let measured = engine.plan_auto_measured(&desc, &zero, 1);
        assert!(measured.run(&b).as_slice().iter().all(|&v| v == 0.0));
        // The CVSE ladder (the third fixed site) prices the degenerate
        // weight without panicking as well.
        let cvse = engine.plan_with_format(MatmulFormat::Cvse, &desc, &zero);
        assert!(cvse.is_ok(), "{cvse:?}");
    }

    #[test]
    fn hint_default_is_bert_sequence_length() {
        let engine = Engine::new(DeviceConfig::a100());
        assert_eq!(engine.b_cols_hint(), 512);
        assert_eq!(engine.device().name, DeviceConfig::a100().name);
    }

    #[test]
    fn plan_gemm_is_priced_on_the_engines_device() {
        // The satellite fix: dense plans get cost-model timing like
        // sparse plans, from the engine's DeviceConfig.
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(256);
        let w = random::glorot_matrix(128, 256, 2).to_half();
        let plan = engine.plan_gemm(&w);
        let t = plan.timing().expect("plan_gemm attaches pricing");
        assert!(t.time_ms > 0.0);
        assert_eq!(plan.descriptor().b_cols, 256);
        // A wider bound prices at least as much work.
        let wide = engine.plan_gemm_bounded(&w, 4096);
        assert!(wide.timing().unwrap().time_ms >= t.time_ms);
    }

    #[test]
    fn plan_with_format_respects_structure() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(64);
        let w = vnm_weight(64, 80, VnmConfig::new(32, 2, 10), 3);
        let desc = engine.descriptor(64, 80);
        // The V:N:M-pruned weight plans in every always-eligible format...
        for f in [
            MatmulFormat::Vnm,
            MatmulFormat::Csr,
            MatmulFormat::Cvse,
            MatmulFormat::Dense,
        ] {
            let plan = engine
                .plan_with_format(f, &desc, &w)
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(plan.format(), f);
            assert!(plan.cost_ms().unwrap() > 0.0, "{f} is priced");
        }
        // ...but not 2:4 (a 2:10 pattern leaves 8-wide gaps).
        let err = engine
            .plan_with_format(MatmulFormat::Nm, &desc, &w)
            .unwrap_err();
        assert!(err.to_string().contains("2:4"), "{err}");
        // Blocked-ELL rejects non-dividing shapes with the probed list.
        let odd = random::glorot_matrix(63, 80, 4).to_half();
        let e2 = engine
            .plan_with_format(MatmulFormat::BlockedEll, &engine.descriptor(63, 80), &odd)
            .unwrap_err();
        assert!(e2.to_string().contains("block size"), "{e2}");
    }

    #[test]
    fn every_format_plans_and_runs_bitwise_vs_its_oracle() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(32);
        // 2:4-pruned weights are eligible for all six formats.
        let dense = random::normal_matrix(64, 64, 0.0, 1.0, 5).to_half();
        let w = {
            let a = NmCompressed::compress_magnitude(&dense, NmConfig::new(2, 4));
            a.decompress()
        };
        let desc = engine.descriptor(64, 64);
        let b = random::normal_matrix(64, 13, 0.0, 1.0, 6).to_half();
        for f in MatmulFormat::ALL {
            let plan = engine
                .plan_with_format(f, &desc, &w)
                .unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(plan.format(), f);
            assert_eq!(
                plan.run(&b),
                plan.run_oneshot(&b),
                "planned vs per-call for {f}"
            );
        }
    }

    #[test]
    fn plan_auto_picks_vnm_on_a_paper_shape() {
        // Fig. 9's BERT-large linear layer at 80% sparsity: Spatha beats
        // the dense model and every baseline format, so auto must land
        // on vnm.
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(4096);
        let cfg = VnmConfig::new(128, 2, 10);
        let w = vnm_weight(1024, 768, cfg, 7);
        let desc = engine.descriptor(1024, 768);
        let plan = engine.plan_auto(&desc, &w);
        assert_eq!(
            plan.format(),
            MatmulFormat::Vnm,
            "cost {:?}",
            plan.cost_ms()
        );
        // And the winner is genuinely the cheapest candidate.
        let dense_cost = engine
            .plan_with_format(MatmulFormat::Dense, &desc, &w)
            .unwrap()
            .cost_ms()
            .unwrap();
        assert!(plan.cost_ms().unwrap() < dense_cost);
    }

    #[test]
    fn pattern_hint_beats_grid_redetection() {
        // 2:12 is outside the probed M grid. Re-detection still finds a
        // *containing* 2:4 pattern (any aligned-divisor group holds at
        // most the sparser pattern's nonzeros) but that prices the weight
        // as if it were only 50% sparse; the hint restores the true
        // pattern and must plan strictly cheaper.
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(4096);
        let cfg = VnmConfig::new(64, 2, 12);
        let w = vnm_weight(1024, 768, cfg, 11);
        let desc = engine.descriptor(1024, 768);
        let unhinted = engine.plan_auto(&desc, &w);
        let hinted = engine.plan_auto_hinted(&desc, &w, Some(cfg));
        assert_eq!(hinted.format(), MatmulFormat::Vnm);
        assert!(
            hinted.cost_ms().unwrap() < unhinted.cost_ms().unwrap(),
            "hinted {:?} must beat re-detected {:?} ({})",
            hinted.cost_ms(),
            unhinted.cost_ms(),
            unhinted.format(),
        );
    }

    #[test]
    fn i8_descriptor_plans_the_quantized_container() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(64);
        let w = vnm_weight(64, 80, VnmConfig::new(32, 2, 10), 13);
        let desc = engine.descriptor(64, 80).with_dtype(DType::I8);
        let plan = engine
            .plan_with_format(MatmulFormat::Vnm, &desc, &w)
            .unwrap();
        assert_eq!(plan.descriptor().dtype, DType::I8);
        assert_eq!(plan.format(), MatmulFormat::Vnm);
        // Planned and per-call int8 paths stay bit-identical.
        let b = random::normal_matrix(80, 9, 0.0, 1.0, 14).to_half();
        assert_eq!(plan.run(&b), plan.run_oneshot(&b));
    }

    #[test]
    fn serve_builder_replans_identically_and_reports_reasons() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(64);
        let w = vnm_weight(64, 80, VnmConfig::new(32, 2, 10), 13);
        let desc = engine.descriptor(64, 80);

        // The builder replans on every call, bit-identical to planning
        // directly — what the serving stack relies on when a cache miss
        // (or an eviction) rebuilds behind a registered key.
        let build = engine.serve_builder(MatmulFormat::Vnm, &desc, &w);
        let rebuilt = build().expect("eligible weight must plan");
        let direct = engine
            .plan_with_format(MatmulFormat::Vnm, &desc, &w)
            .unwrap();
        let b = random::normal_matrix(80, 5, 0.0, 1.0, 21).to_half();
        assert_eq!(rebuilt.run(&b), direct.run(&b));

        // An ineligible pairing surfaces the planner's reason as the
        // string `ServeError::BuildFailed` carries to clients.
        let dense = random::normal_matrix(64, 80, 0.0, 1.0, 22).to_half();
        let bad = engine.serve_builder(MatmulFormat::Nm, &desc, &dense);
        let reason = bad().expect_err("dense weight cannot plan as 2:4");
        assert!(reason.contains("2:4"), "{reason}");
    }

    #[test]
    fn i8_descriptor_reports_why_other_formats_are_ineligible() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(64);
        let w = vnm_weight(64, 64, VnmConfig::new(32, 2, 4), 15); // 2:4, nm-eligible in f16
        let desc = engine.descriptor(64, 64).with_dtype(DType::I8);
        for f in [MatmulFormat::Nm, MatmulFormat::Csr, MatmulFormat::Dense] {
            let err = engine.plan_with_format(f, &desc, &w).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains("dtype i8"), "{msg}");
            assert!(msg.contains("vnm") || msg.contains("V:N:M"), "{msg}");
        }
    }

    #[test]
    fn plan_auto_prices_i8_below_f16_when_allowed() {
        // Fig. 9 shape: the i8 V:N:M candidate must beat every f16 format
        // (half the bytes on a bandwidth-bound dispatch) and win auto.
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(4096);
        let cfg = VnmConfig::new(128, 2, 10);
        let w = vnm_weight(1024, 768, cfg, 16);
        let f16_plan = engine.plan_auto(&engine.descriptor(1024, 768), &w);
        let i8_desc = engine.descriptor(1024, 768).with_dtype(DType::I8);
        let i8_plan = engine.plan_auto(&i8_desc, &w);
        assert_eq!(
            i8_plan.descriptor().dtype,
            DType::I8,
            "auto must pick the i8 candidate"
        );
        assert!(
            i8_plan.cost_ms().unwrap() < f16_plan.cost_ms().unwrap(),
            "i8 {:?} !< f16 {:?}",
            i8_plan.cost_ms(),
            f16_plan.cost_ms()
        );
    }

    #[test]
    fn i8_auto_falls_back_to_f16_formats_for_unstructured_weights() {
        // 50% unstructured sparsity violates every probed V:2:M pattern
        // (three-in-a-group rows are everywhere): the i8 candidate is
        // ineligible, and auto still returns a plan (the cheapest f16
        // format) instead of failing.
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(512);
        let w = {
            let d = random::normal_matrix(256, 512, 0.0, 1.0, 17);
            let mask = SparsityMask::from_fn(256, 512, |i, j| {
                let h = (i * 2654435761) ^ (j * 0x9E37_79B9);
                ((h ^ (h >> 7)) ^ (h >> 13)) % 2 == 0
            });
            mask.apply_f32(&d).to_half()
        };
        let desc = engine.descriptor(256, 512).with_dtype(DType::I8);
        let plan = engine.plan_auto(&desc, &w);
        assert_eq!(plan.descriptor().dtype, DType::F16, "fallback stays f16");
    }

    #[test]
    fn plan_quant_spmm_builds_priced_i8_plans() {
        let engine = Engine::new(DeviceConfig::rtx3090())
            .with_b_cols_hint(128)
            .with_calibration(venom_quant::Calibration::Percentile(99.5));
        let cfg = VnmConfig::new(32, 2, 8);
        let w = random::normal_matrix(64, 128, 0.0, 1.0, 18);
        let mask = magnitude::prune_vnm(&w, cfg);
        let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
        let plan = engine.plan_quant_spmm(&a);
        assert_eq!(plan.descriptor().b_cols, 128);
        assert_eq!(
            plan.weight().calibration(),
            venom_quant::Calibration::Percentile(99.5),
            "the engine's calibrator reaches the container"
        );
        assert!(plan.timing().expect("V=32 is launchable").time_ms > 0.0);
    }

    #[test]
    fn plan_auto_picks_dense_for_dense_weights() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(1024);
        let w = random::glorot_matrix(256, 512, 8).to_half();
        let plan = engine.plan_auto(&engine.descriptor(256, 512), &w);
        assert_eq!(plan.format(), MatmulFormat::Dense);
    }

    #[test]
    fn plan_auto_routes_memory_bound_shapes_to_the_band_path() {
        // The acceptance shape: r=1024, k=768, c=8 sits far left of the
        // CUDA-core ridge, so the band replay's DRAM pricing must beat
        // the mma stream and every baseline.
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(8);
        let cfg = VnmConfig::new(128, 2, 10);
        let w = vnm_weight(1024, 768, cfg, 7);
        let desc = engine.descriptor(1024, 768);
        let plan = engine.plan_auto(&desc, &w);
        assert_eq!(plan.format(), MatmulFormat::Vnm);
        assert_eq!(plan.path(), "band", "cost {:?}", plan.cost_ms());
        assert_eq!(
            plan.regime(engine.device()),
            Some(venom_sim::Regime::MemoryBound)
        );
        // The routed winner still executes bit-exactly.
        let b = random::normal_matrix(768, 8, 0.0, 1.0, 30).to_half();
        assert_eq!(plan.run(&b), plan.run_oneshot(&b));
    }

    #[test]
    fn plan_auto_keeps_the_mma_stream_right_of_the_ridge() {
        // Fig. 9's wide bound (c=4096) is compute-bound: the band
        // replay's CUDA-core roof prices it out and the Spatha mma
        // stream must stay the winner (the fig09 pin).
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(4096);
        let cfg = VnmConfig::new(128, 2, 10);
        let w = vnm_weight(1024, 768, cfg, 7);
        let plan = engine.plan_auto(&engine.descriptor(1024, 768), &w);
        assert_eq!(plan.format(), MatmulFormat::Vnm);
        assert_eq!(plan.path(), "vnm", "cost {:?}", plan.cost_ms());
        assert_eq!(
            plan.regime(engine.device()),
            Some(venom_sim::Regime::ComputeBound)
        );
    }

    #[test]
    fn plan_band_forces_the_non_mma_path() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(4096);
        let cfg = VnmConfig::new(64, 2, 10);
        let w = vnm_weight(256, 320, cfg, 19);
        let desc = engine.descriptor(256, 320);
        // Even on a compute-bound bound the forced path is the band one.
        let plan = engine.plan_band(&desc, &w).expect("eligible structure");
        assert_eq!(plan.path(), "band");
        let b = random::normal_matrix(320, 12, 0.0, 1.0, 20).to_half();
        assert_eq!(plan.run(&b), plan.run_oneshot(&b));
        // An i8 descriptor is rejected with the reason.
        let err = engine
            .plan_band(&desc.with_dtype(DType::I8), &w)
            .unwrap_err();
        assert!(err.to_string().contains("i8"), "{err}");
    }

    #[test]
    fn plan_auto_measured_returns_an_eligible_plan() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(32);
        let w = vnm_weight(64, 64, VnmConfig::new(16, 2, 8), 9);
        let desc = engine.descriptor(64, 64);
        let plan = engine.plan_auto_measured(&desc, &w, 2);
        // Whatever won the measurement, it must execute exactly.
        let b = random::normal_matrix(64, 8, 0.0, 1.0, 10).to_half();
        assert_eq!(plan.run(&b), plan.run_oneshot(&b));
    }
}
