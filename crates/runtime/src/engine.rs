//! The [`Engine`]: the factory that builds execution plans against one
//! target device.

use crate::plan::{GemmPlan, SpmmPlan};
use venom_core::SpmmOptions;
use venom_format::VnmMatrix;
use venom_fp16::Half;
use venom_sim::DeviceConfig;
use venom_tensor::Matrix;

/// Builds plans for one device configuration. Cheap to clone; layers and
/// models hold the plans, not the engine.
#[derive(Clone, Debug)]
pub struct Engine {
    dev: DeviceConfig,
    opts: SpmmOptions,
    b_cols_hint: usize,
}

impl Engine {
    /// Default output-column bound plans are tuned for when the caller
    /// gives none: the BERT evaluation sequence length of the paper.
    pub const DEFAULT_B_COLS_HINT: usize = 512;

    /// An engine targeting `dev` with default options.
    pub fn new(dev: DeviceConfig) -> Self {
        Engine { dev, opts: SpmmOptions::default(), b_cols_hint: Self::DEFAULT_B_COLS_HINT }
    }

    /// Overrides the output-column bound used by [`Self::plan_spmm`].
    #[must_use]
    pub fn with_b_cols_hint(mut self, b_cols: usize) -> Self {
        self.b_cols_hint = b_cols;
        self
    }

    /// Overrides the kernel options plans are priced with (column-loc /
    /// epilogue ablations, explicit tile).
    #[must_use]
    pub fn with_options(mut self, opts: SpmmOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The target device.
    pub fn device(&self) -> &DeviceConfig {
        &self.dev
    }

    /// The column bound [`Self::plan_spmm`] tunes for.
    pub fn b_cols_hint(&self) -> usize {
        self.b_cols_hint
    }

    /// Plans a V:N:M SpMM at the engine's column hint.
    pub fn plan_spmm(&self, a: &VnmMatrix) -> SpmmPlan {
        self.plan_spmm_bounded(a, self.b_cols_hint)
    }

    /// Plans a V:N:M SpMM tuned and priced for up to `b_cols_bound`
    /// output columns (wider runs stay exact; only the captured pricing
    /// assumes the bound).
    pub fn plan_spmm_bounded(&self, a: &VnmMatrix, b_cols_bound: usize) -> SpmmPlan {
        SpmmPlan::build(a, b_cols_bound, &self.opts, &self.dev)
    }

    /// Plans a dense GEMM (no tile search: the dense model has a single
    /// implementation).
    pub fn plan_gemm(&self, w: &Matrix<Half>) -> GemmPlan {
        GemmPlan::new(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use venom_format::VnmConfig;
    use venom_pruner::magnitude;
    use venom_tensor::random;

    #[test]
    fn engine_builds_tuned_plans() {
        let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(128);
        let w = random::normal_matrix(64, 128, 0.0, 1.0, 1);
        let cfg = VnmConfig::new(32, 2, 8);
        let mask = magnitude::prune_vnm(&w, cfg);
        let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
        let plan = engine.plan_spmm(&a);
        assert_eq!(plan.b_cols_bound(), 128);
        let tile = plan.tile().expect("V = 32 is kernel-launchable");
        assert_eq!(tile.bs_r, 32);
        assert!(plan.timing().expect("priced at build").time_ms > 0.0);
    }

    #[test]
    fn hint_default_is_bert_sequence_length() {
        let engine = Engine::new(DeviceConfig::a100());
        assert_eq!(engine.b_cols_hint(), 512);
        assert_eq!(engine.device().name, DeviceConfig::a100().name);
    }
}
