//! The format-erased plan surface: one trait every backend executes
//! through.
//!
//! A [`MatmulPlan`] is the execute half of the cuSPARSELt-style
//! descriptor/plan split: built once by the [`crate::Engine`] for one
//! [`MatmulDescriptor`], replayed on every request. All five sparse
//! formats and the dense path implement it — [`crate::SpmmPlan`]
//! (V:N:M on the Spatha kernel), [`crate::GemmPlan`] (dense), and
//! [`crate::FormatPlan`] (N:M, CSR, CVSE, Blocked-ELL through the
//! condensed stream) — so layers, models and the CLI hold
//! `Arc<dyn MatmulPlan>` and mix formats per weight.
//!
//! Every plan carries two execution paths with one bitwise contract:
//!
//! * the **planned** path (`run` / `run_batch` / `run_linear`) replays
//!   the condensed operand stream captured at build time, and
//! * the **per-call** path (`run_oneshot` / `run_linear_percall`)
//!   redoes staging and dispatch on every invocation — the unplanned
//!   baseline the serving benchmarks compare against.
//!
//! Both must produce identical bits: the stream stores each row's
//! operands in the exact order the format's `spmm_ref` accumulates
//! them (see [`venom_format::SparseKernel::for_each_operand`]).

use crate::descriptor::MatmulDescriptor;
use venom_format::MatmulFormat;
use venom_fp16::Half;
use venom_sim::pipeline::KernelCounts;
use venom_sim::{DeviceConfig, KernelTiming, Regime, Roofline};
use venom_tensor::Matrix;

/// A planning failure: the weights cannot be served in the requested
/// format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// The weights' nonzero structure does not fit the format.
    Incompatible {
        /// The format that was requested.
        format: MatmulFormat,
        /// Why the weights cannot be planned in it.
        reason: String,
    },
    /// A non-weight plan (e.g. the attention pipeline) cannot be built
    /// for the requested shape or mask.
    Unplannable {
        /// What was being planned ("attention", "sddmm", ...).
        what: &'static str,
        /// Why the plan cannot be built.
        reason: String,
    },
}

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PlanError::Incompatible { format, reason } => {
                write!(f, "cannot plan format '{format}': {reason}")
            }
            PlanError::Unplannable { what, reason } => {
                write!(f, "cannot plan {what}: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// A built execution plan for one weight matmul: priced at build time,
/// replayed bit-exactly on every request.
pub trait MatmulPlan: Send + Sync + std::fmt::Debug {
    /// The storage format this plan executes.
    fn format(&self) -> MatmulFormat;

    /// The matmul the plan was built for.
    fn descriptor(&self) -> &MatmulDescriptor;

    /// Cost-model timing of one dispatch at the planned bound (`None`
    /// when the format has no launchable configuration for this weight,
    /// e.g. V:N:M with V below the kernel's fragment contract).
    fn timing(&self) -> Option<&KernelTiming>;

    /// The plan's priced cost in milliseconds — what
    /// [`crate::Engine::plan_auto`] minimises.
    fn cost_ms(&self) -> Option<f64> {
        self.timing().map(|t| t.time_ms)
    }

    /// The resource counts the plan was priced on (`None` when the
    /// format was priced without a counts model, or not priced at all).
    fn counts(&self) -> Option<&KernelCounts> {
        None
    }

    /// Places the priced launch on `dev`'s roofline — intensity, ridge
    /// point and attainable bound. `None` without [`Self::counts`].
    fn roofline(&self, dev: &DeviceConfig) -> Option<Roofline> {
        self.counts().map(|c| venom_sim::roofline::analyze(dev, c))
    }

    /// Which side of `dev`'s ridge point the plan sits on — the
    /// classification the dispatch layer routes on. `None` without
    /// [`Self::counts`].
    fn regime(&self, dev: &DeviceConfig) -> Option<Regime> {
        self.roofline(dev).map(|r| r.regime())
    }

    /// The execution path within the format — distinguishes variants
    /// that share a storage format, e.g. the V:N:M `mma.sp` stream
    /// (`"vnm"`) from the bandwidth-optimized band replay (`"band"`).
    fn path(&self) -> &'static str {
        self.format().name()
    }

    /// Stored operand count of the condensed stream.
    fn stored_values(&self) -> usize;

    /// Approximate resident bytes of the plan — the condensed stream's
    /// per-operand value (`f32`) and source-row index (`u32`) planes
    /// plus a fixed structural overhead. The currency of the serving
    /// plan cache's byte budget ([`crate::serve::PlanCache`]).
    fn approx_bytes(&self) -> usize {
        64 + self.stored_values() * (core::mem::size_of::<f32>() + core::mem::size_of::<u32>())
    }

    /// Reconstructs the dense weight (pruned entries are zero) — used to
    /// re-plan a weight in another format.
    fn weight_dense(&self) -> Matrix<Half>;

    /// Executes `C = A * B`; bit-identical to the format's `spmm_ref`.
    ///
    /// # Panics
    /// Panics if `B` has a row count different from the planned K.
    fn run(&self, b: &Matrix<Half>) -> Matrix<f32>;

    /// One dispatch over many requests, concatenated along the
    /// output-column dimension; bit-identical to running each
    /// separately.
    ///
    /// # Panics
    /// Panics if any operand has a row count different from the planned K.
    fn run_batch(&self, bs: &[&Matrix<Half>]) -> Vec<Matrix<f32>>;

    /// The fused layer forward `y = x W^T + b`; bit-identical to the
    /// per-call chain [`Self::run_linear_percall`].
    ///
    /// # Panics
    /// Panics on feature or bias length mismatch.
    fn run_linear(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32>;

    /// [`Self::run_linear`] over a pre-staged operand (see
    /// [`crate::stage::stage_activations_t`]); `tokens` is the
    /// activation row count the buffer was staged from.
    ///
    /// # Panics
    /// Panics on staging or bias length mismatch.
    fn run_linear_staged(&self, staged: &[f32], tokens: usize, bias: &[f32]) -> Matrix<f32>;

    /// The retained per-call dispatch: redoes operand staging (and, for
    /// the Spatha path, tile selection and pricing) on every invocation.
    /// Bit-identical to [`Self::run`]; the serving benchmarks use it as
    /// the unplanned baseline, and the server's graceful degradation
    /// rides it when a plan build fails or times out — that fallback is
    /// only sound because this bit-identity holds for every format
    /// (enforced by the conformance harness).
    ///
    /// # Panics
    /// Panics if `B` has a row count different from the planned K.
    fn run_oneshot(&self, b: &Matrix<Half>) -> Matrix<f32>;

    /// The per-call layer forward: converts, transposes and dispatches
    /// through [`Self::run_oneshot`] on every invocation — the chain
    /// every `forward_percall` used to hand-write. Bit-identical to
    /// [`Self::run_linear`].
    ///
    /// # Panics
    /// Panics on feature or bias length mismatch.
    fn run_linear_percall(&self, x: &Matrix<f32>, bias: &[f32]) -> Matrix<f32> {
        let desc = self.descriptor();
        assert_eq!(x.cols(), desc.in_features, "input features mismatch");
        assert_eq!(
            bias.len(),
            desc.out_features,
            "bias must match out_features"
        );
        // y^T = W x^T in the library's sparse-friendly orientation, then
        // transpose back and add the bias row-wise.
        let xt = x.to_half().transpose();
        let mut y = self.run_oneshot(&xt).transpose();
        for r in 0..y.rows() {
            for (c, bv) in bias.iter().enumerate() {
                y.set(r, c, y.get(r, c) + bv);
            }
        }
        y
    }
}
