//! Property tests for the dequeue-side coalescer: whatever mix of keys,
//! expired requests and batch bounds the queue sees, `pop_coalesced`
//! never exceeds `max_batch`, never mixes keys in one batch, never
//! reorders requests within a key, and — together with the expiry sweep
//! — accounts for every submitted request exactly once.

use std::time::{Duration, Instant};

use proptest::prelude::*;
use venom_fp16::Half;
use venom_runtime::serve::{RequestQueue, ServeRequest};
use venom_runtime::{MatmulDescriptor, PlanKey, ServeError};
use venom_tensor::{random, Matrix};

/// The operand's column count encodes the submission index, so requests
/// can be identified again after they come back out of the queue.
fn tagged_operand(index: usize) -> Matrix<Half> {
    random::activation_matrix(8, index + 1, 0).to_half()
}

fn index_of(req: &ServeRequest) -> usize {
    req.operand.cols() - 1
}

/// SplitMix64: derives the per-submission (key, expired) stream from one
/// generated seed (the vendored proptest shim has no vec strategy).
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn coalescer_bounds_batches_and_preserves_per_key_order(
        len in 1usize..40,
        seed in any::<u64>(),
        max_batch in 1usize..6,
    ) {
        // (key id, expired?) per submission, in submission order.
        let ops: Vec<(u64, bool)> = (0..len)
            .map(|i| {
                let bits = mix(seed ^ i as u64);
                (bits % 3, bits & (1 << 32) != 0)
            })
            .collect();
        let keys: Vec<PlanKey> = (0..3)
            .map(|k| PlanKey::bare(MatmulDescriptor::new(8, 8)).with_salt(k))
            .collect();
        let queue = RequestQueue::bounded(ops.len());

        let mut handles = Vec::new();
        for (i, &(k, expired)) in ops.iter().enumerate() {
            let (req, handle) = ServeRequest::new(keys[k as usize], tagged_operand(i));
            let req = if expired {
                // Already past its deadline at submission: the sweep
                // must answer it, never a batch slot.
                req.with_deadline_at(Instant::now() - Duration::from_millis(1))
            } else {
                req
            };
            queue.try_submit(req).map_err(|(e, _)| e).expect("capacity = len");
            handles.push((k, expired, handle));
        }

        // Closed queue: pop_coalesced drains live requests then reports
        // the queue empty instead of blocking on an all-expired tail.
        queue.close();
        let mut popped_per_key: Vec<Vec<usize>> = vec![Vec::new(); 3];
        let mut popped_total = 0usize;
        while let Some(batch) = queue.pop_coalesced(max_batch) {
            prop_assert!(batch.len() <= max_batch, "batch of {} > {max_batch}", batch.len());
            let key = batch[0].key;
            for req in &batch {
                prop_assert_eq!(req.key, key, "mixed keys in one batch");
                let k = keys.iter().position(|c| *c == key).expect("known key");
                popped_per_key[k].push(index_of(req));
                popped_total += 1;
            }
        }

        // Per-key relative order: the popped indices for each key must be
        // exactly that key's live submissions, in submission order.
        for (k, popped) in popped_per_key.iter().enumerate() {
            let submitted_live: Vec<usize> = ops
                .iter()
                .enumerate()
                .filter(|&(_, &(key, expired))| key as usize == k && !expired)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(
                popped,
                &submitted_live,
                "key {} was reordered or lost requests",
                k
            );
        }

        // Total accounting: every submission either came out in a batch
        // or was answered DeadlineExceeded by the sweep; none vanished.
        let mut expired_answered = 0usize;
        for (_, expired, handle) in handles {
            match handle.poll() {
                Some(Err(ServeError::DeadlineExceeded)) => {
                    prop_assert!(expired, "live request expired spuriously");
                    expired_answered += 1;
                }
                None => prop_assert!(!expired, "expired request left unanswered"),
                other => prop_assert!(false, "unexpected response {:?}", other),
            }
        }
        prop_assert_eq!(queue.expired_count() as usize, expired_answered);
        prop_assert_eq!(popped_total + expired_answered, ops.len(), "requests lost");
    }
}
