//! End-to-end contracts of the serving loop: the coalescer packs
//! same-key requests without reordering other keys, coalesced batches
//! are bit-identical to one-at-a-time dispatch, admission control
//! rejects at capacity, and the steady-state cache hit ratio stays
//! above 90%.

use std::sync::Arc;

use venom_format::{MatmulFormat, VnmConfig};
use venom_fp16::Half;
use venom_pruner::magnitude;
use venom_runtime::serve::{RequestQueue, ServeRequest};
use venom_runtime::{Engine, MatmulPlan, PlanCache, PlanKey, ServeConfig, ServeError, Server};
use venom_sim::DeviceConfig;
use venom_tensor::{random, Matrix};

fn engine(b_cols: usize) -> Engine {
    Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(b_cols)
}

fn planned_weight(
    r: usize,
    k: usize,
    seed: u64,
    engine: &Engine,
) -> (PlanKey, Arc<dyn MatmulPlan>) {
    let w = random::glorot_matrix(r, k, seed);
    let mask = magnitude::prune_vnm(&w, VnmConfig::new(16, 2, 8));
    let pruned = mask.apply_f32(&w).to_half();
    let plan = engine
        .plan_with_format(MatmulFormat::Vnm, &engine.descriptor(r, k), &pruned)
        .expect("V:N:M plan");
    (PlanKey::for_weight(*plan.descriptor(), &pruned), plan)
}

fn operand(k: usize, cols: usize, seed: u64) -> Matrix<Half> {
    random::activation_matrix(k, cols, seed).to_half()
}

#[test]
fn coalescer_packs_same_key_requests_and_keeps_other_keys_queued() {
    let engine = engine(8);
    let (ka, plan_a) = planned_weight(64, 64, 1, &engine);
    let (kb, plan_b) = planned_weight(64, 64, 2, &engine);
    assert_ne!(ka, kb);

    // Interleaved submission order: A A B A B.
    let queue = RequestQueue::bounded(8);
    let mut handles = Vec::new();
    for (i, key) in [ka, ka, kb, ka, kb].into_iter().enumerate() {
        let (req, handle) = ServeRequest::new(key, operand(64, 4, 10 + i as u64));
        queue
            .try_submit(req)
            .map_err(|(e, _)| e)
            .expect("capacity 8");
        handles.push(handle);
    }

    // The first pop coalesces every queued A; the B's keep their order.
    let batch_a = queue.pop_coalesced(8).expect("queue has requests");
    assert_eq!(batch_a.len(), 3);
    assert!(batch_a.iter().all(|r| r.key == ka));
    let batch_b = queue.pop_coalesced(8).expect("B requests remain");
    assert_eq!(batch_b.len(), 2);
    assert!(batch_b.iter().all(|r| r.key == kb));
    assert!(queue.is_empty());

    // One batched dispatch per key must be bit-identical to running each
    // operand alone.
    for (batch, plan) in [(&batch_a, &plan_a), (&batch_b, &plan_b)] {
        let operands: Vec<&Matrix<Half>> = batch.iter().map(|r| &r.operand).collect();
        let together = plan.run_batch(&operands);
        for (req, out) in batch.iter().zip(together) {
            assert_eq!(out, plan.run(&req.operand), "coalescing changed bits");
        }
    }
}

#[test]
fn coalescer_respects_the_max_batch_bound() {
    let engine = engine(8);
    let (key, _plan) = planned_weight(64, 64, 3, &engine);
    let queue = RequestQueue::bounded(8);
    let _handles: Vec<_> = (0..5)
        .map(|i| {
            let (req, handle) = ServeRequest::new(key, operand(64, 2, 20 + i));
            queue
                .try_submit(req)
                .map_err(|(e, _)| e)
                .expect("capacity 8");
            handle
        })
        .collect();
    assert_eq!(queue.pop_coalesced(2).unwrap().len(), 2);
    assert_eq!(queue.pop_coalesced(2).unwrap().len(), 2);
    assert_eq!(queue.pop_coalesced(2).unwrap().len(), 1);
}

#[test]
fn admission_control_rejects_at_capacity_and_after_close() {
    let engine = engine(8);
    let (key, _plan) = planned_weight(64, 64, 4, &engine);
    let queue = RequestQueue::bounded(2);
    let (r1, _h1) = ServeRequest::new(key, operand(64, 2, 30));
    let (r2, _h2) = ServeRequest::new(key, operand(64, 2, 31));
    let (r3, _h3) = ServeRequest::new(key, operand(64, 2, 32));
    assert!(queue.try_submit(r1).is_ok());
    assert!(queue.try_submit(r2).is_ok());
    let (err, rejected) = queue.try_submit(r3).unwrap_err();
    assert_eq!(err, ServeError::QueueFull { capacity: 2 });

    queue.close();
    let (err, _) = queue.try_submit(rejected).unwrap_err();
    assert_eq!(err, ServeError::ShuttingDown);
}

#[test]
fn server_outputs_are_bit_identical_under_concurrent_clients() {
    let engine = engine(32);
    let (key, plan) = planned_weight(128, 96, 5, &engine);
    let operands: Vec<Matrix<Half>> = (0..24).map(|i| operand(96, 4, 40 + i)).collect();
    let baseline: Vec<Matrix<f32>> = operands.iter().map(|b| plan.run(b)).collect();

    let server = Server::start(
        ServeConfig::default()
            .with_concurrency(3)
            .with_max_batch(4)
            .with_queue_capacity(8),
        Arc::new(PlanCache::new()),
    );
    let registered = Arc::clone(&plan);
    server.register(key, move || Arc::clone(&registered));

    let mut results: Vec<Option<Matrix<f32>>> = vec![None; operands.len()];
    std::thread::scope(|s| {
        let clients: Vec<_> = (0..4)
            .map(|c| {
                let (server, operands) = (&server, &operands);
                s.spawn(move || {
                    (c..operands.len())
                        .step_by(4)
                        .map(|i| {
                            let h = server.submit(key, operands[i].clone()).expect("submit");
                            (i, h.wait().expect("serve"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for client in clients {
            for (i, out) in client.join().unwrap() {
                results[i] = Some(out);
            }
        }
    });
    for (got, want) in results.iter().zip(&baseline) {
        assert_eq!(
            got.as_ref(),
            Some(want),
            "served output differs from plan.run"
        );
    }

    let stats = server.cache().stats();
    let report = server.shutdown();
    assert_eq!(report.served, 24);
    assert_eq!(report.errored, 0);
    assert!(report.batches >= 6, "24 requests / max batch 4: {report:?}");
    assert!(report.mean_batch >= 1.0);
    assert!(report.p50_ms <= report.p99_ms && report.p99_ms <= report.max_ms);
    assert_eq!(stats.builds, 1, "one registered weight, one build");
}

#[test]
fn steady_state_serving_keeps_the_cache_hit_ratio_above_90_percent() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 6, &engine);
    let server = Server::start(
        ServeConfig::default().with_concurrency(2).with_max_batch(2),
        Arc::new(PlanCache::new()),
    );
    let registered = Arc::clone(&plan);
    server
        .register_warm(key, move || Arc::clone(&registered))
        .join()
        .unwrap();

    // Sequential submit/wait: every request is its own cache lookup.
    for i in 0..30 {
        let out = server
            .submit(key, operand(64, 2, 60 + i))
            .expect("submit")
            .wait()
            .expect("serve");
        assert_eq!(out.rows(), 64);
    }
    let stats = server.cache().stats();
    assert!(
        stats.hit_ratio() >= 0.9,
        "steady-state hit ratio {:.3} below 0.9 ({stats:?})",
        stats.hit_ratio()
    );
    assert_eq!(stats.builds, 1);
    let report = server.shutdown();
    assert_eq!(report.served, 30);
}

#[test]
fn unknown_keys_and_misshapen_operands_are_answered_with_errors() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 7, &engine);
    let server = Server::with_default_cache(ServeConfig::default().with_concurrency(1));

    // No registered builder: the request is answered, not dropped.
    let err = server
        .submit(key, operand(64, 2, 70))
        .expect("submit")
        .wait()
        .unwrap_err();
    assert_eq!(err, ServeError::UnknownKey);

    // Registered, but the operand's K does not match the plan.
    let registered = Arc::clone(&plan);
    server.register(key, move || Arc::clone(&registered));
    let err = server
        .submit(key, operand(32, 2, 71))
        .expect("submit")
        .wait()
        .unwrap_err();
    assert_eq!(
        err,
        ServeError::OperandShape {
            expected_k: 64,
            got: 32
        }
    );

    // Well-formed requests on the same server still serve.
    let out = server
        .submit(key, operand(64, 2, 72))
        .expect("submit")
        .wait()
        .expect("serve");
    assert_eq!(out, plan.run(&operand(64, 2, 72)));

    let report = server.shutdown();
    assert_eq!(report.served, 1);
    assert_eq!(report.errored, 2);
}
