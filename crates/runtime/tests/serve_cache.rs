//! Concurrency and residency contracts of the shared plan cache:
//! exactly-once builds under racing threads, LRU eviction that never
//! drops an in-flight plan, counter accuracy, and failed-build retry.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use venom_format::{MatmulFormat, VnmConfig};
use venom_fp16::Half;
use venom_pruner::magnitude;
use venom_runtime::{Engine, MatmulPlan, PlanCache, PlanKey};
use venom_sim::DeviceConfig;
use venom_tensor::{random, Matrix};

fn engine() -> Engine {
    Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(16)
}

fn pruned_weight(r: usize, k: usize, seed: u64) -> Matrix<Half> {
    let w = random::glorot_matrix(r, k, seed);
    let mask = magnitude::prune_vnm(&w, VnmConfig::new(16, 2, 8));
    mask.apply_f32(&w).to_half()
}

fn build_plan(engine: &Engine, w: &Matrix<Half>) -> Arc<dyn MatmulPlan> {
    engine
        .plan_with_format(MatmulFormat::Vnm, &engine.descriptor(w.rows(), w.cols()), w)
        .expect("V:N:M plan")
}

#[test]
fn racing_threads_build_exactly_once() {
    let engine = engine();
    let w = pruned_weight(64, 64, 1);
    let key = PlanKey::for_weight(engine.descriptor(64, 64), &w);
    let cache = PlanCache::new();
    let built = AtomicUsize::new(0);

    let plans: Vec<Arc<dyn MatmulPlan>> = std::thread::scope(|s| {
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let (cache, engine, w, built) = (&cache, &engine, &w, &built);
                s.spawn(move || {
                    cache.get_or_plan(key, || {
                        built.fetch_add(1, Ordering::SeqCst);
                        build_plan(engine, w)
                    })
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    assert_eq!(
        built.load(Ordering::SeqCst),
        1,
        "builder ran more than once"
    );
    for p in &plans[1..] {
        assert!(Arc::ptr_eq(&plans[0], p), "threads got different plans");
    }
    let stats = cache.stats();
    assert_eq!(stats.builds, 1);
    assert_eq!(stats.hits + stats.misses, 8);
    assert_eq!(stats.misses, 1, "only the slot-inserting thread misses");
    assert_eq!(stats.resident_plans, 1);
    assert!(stats.resident_bytes > 0);
}

#[test]
fn eviction_never_drops_an_in_flight_plan() {
    let engine = engine();
    let wa = pruned_weight(64, 64, 2);
    let wb = pruned_weight(64, 64, 3);
    let ka = PlanKey::for_weight(engine.descriptor(64, 64), &wa);
    let kb = PlanKey::for_weight(engine.descriptor(64, 64), &wb);
    // A budget no single plan fits: every sweep wants to evict everything.
    let cache = PlanCache::with_budget(1);

    let held_a = cache.get_or_plan(ka, || build_plan(&engine, &wa));
    let held_b = cache.get_or_plan(kb, || build_plan(&engine, &wb));

    // Both plans are over budget but in flight (the caller holds their
    // Arcs) — the sweep must leave them resident.
    let stats = cache.stats();
    assert_eq!(stats.evictions, 0, "evicted an in-flight plan");
    assert_eq!(stats.resident_plans, 2);
    assert!(cache.get(&ka).is_some());
    assert!(cache.get(&kb).is_some());

    // Release A only; the next build's sweep may evict idle plans but
    // must still keep the held B.
    drop(held_a);
    let wc = pruned_weight(64, 64, 4);
    let kc = PlanKey::for_weight(engine.descriptor(64, 64), &wc);
    let held_c = cache.get_or_plan(kc, || build_plan(&engine, &wc));
    assert!(cache.stats().evictions >= 1, "idle plan A survived a sweep");
    assert!(
        Arc::ptr_eq(&held_b, &cache.get(&kb).expect("held plan evicted")),
        "held plan B must stay resident and identical"
    );
    drop(held_c);
}

#[test]
fn lru_prefers_the_least_recently_used_idle_plan() {
    let engine = engine();
    let weights: Vec<Matrix<Half>> = (0..3).map(|i| pruned_weight(64, 64, 10 + i)).collect();
    let keys: Vec<PlanKey> = weights
        .iter()
        .map(|w| PlanKey::for_weight(engine.descriptor(64, 64), w))
        .collect();
    // Identical shapes => identical sizes; budget fits exactly two plans.
    let bytes = build_plan(&engine, &weights[0]).approx_bytes();
    let cache = PlanCache::with_budget(2 * bytes);

    drop(cache.get_or_plan(keys[0], || build_plan(&engine, &weights[0])));
    drop(cache.get_or_plan(keys[1], || build_plan(&engine, &weights[1])));
    // Touch 0 so 1 becomes the LRU entry, then overflow with 2.
    assert!(cache.get(&keys[0]).is_some());
    drop(cache.get_or_plan(keys[2], || build_plan(&engine, &weights[2])));

    let stats = cache.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!(stats.resident_plans, 2);
    assert!(
        cache.get(&keys[1]).is_none(),
        "LRU entry must be the victim"
    );
    assert!(cache.get(&keys[0]).is_some());
    assert!(cache.get(&keys[2]).is_some());
}

#[test]
fn warm_up_builds_in_the_background_exactly_once() {
    let engine = engine();
    let w = pruned_weight(64, 64, 20);
    let key = PlanKey::for_weight(engine.descriptor(64, 64), &w);
    let cache = Arc::new(PlanCache::new());

    let eng = engine.clone();
    let weight = w.clone();
    cache
        .warm(key, move || build_plan(&eng, &weight))
        .join()
        .unwrap();
    assert_eq!(cache.stats().builds, 1);
    assert!(cache.get(&key).is_some(), "warmed plan must be resident");

    // Warming an already-resident key reuses the build.
    let eng = engine.clone();
    cache
        .warm(key, move || build_plan(&eng, &w))
        .join()
        .unwrap();
    assert_eq!(cache.stats().builds, 1);
}

#[test]
fn steady_state_lookups_keep_the_hit_ratio_above_90_percent() {
    let engine = engine();
    let w = pruned_weight(64, 64, 30);
    let key = PlanKey::for_weight(engine.descriptor(64, 64), &w);
    let cache = PlanCache::new();
    for _ in 0..20 {
        let _ = cache.get_or_plan(key, || build_plan(&engine, &w));
    }
    let stats = cache.stats();
    assert_eq!(stats.builds, 1);
    assert_eq!(stats.misses, 1);
    assert!(
        stats.hit_ratio() >= 0.9,
        "steady-state hit ratio {:.3} below 0.9",
        stats.hit_ratio()
    );
}

#[test]
fn failed_builds_clear_the_slot_so_retries_can_succeed() {
    let engine = engine();
    let w = pruned_weight(64, 64, 40);
    let key = PlanKey::for_weight(engine.descriptor(64, 64), &w);
    let cache = PlanCache::new();

    let err = cache.try_get_or_plan(key, || Err::<Arc<dyn MatmulPlan>, _>("no kernel"));
    assert_eq!(err.unwrap_err(), "no kernel");
    assert!(
        cache.is_empty(),
        "failed build must not leave an empty slot"
    );

    let plan = cache
        .try_get_or_plan(key, || Ok::<_, &str>(build_plan(&engine, &w)))
        .expect("retry after failed build");
    assert_eq!(cache.stats().builds, 1);
    assert!(Arc::ptr_eq(&plan, &cache.get(&key).unwrap()));
}

#[test]
fn distinct_weights_and_salts_occupy_distinct_cache_lines() {
    let engine = engine();
    let wa = pruned_weight(64, 64, 50);
    let wb = pruned_weight(64, 64, 51);
    let desc = engine.descriptor(64, 64);
    let ka = PlanKey::for_weight(desc, &wa);
    let kb = PlanKey::for_weight(desc, &wb);
    assert_ne!(ka, kb, "same shape, different weights must not alias");
    assert_ne!(ka, ka.with_salt(7), "salt must change the key");
    assert_eq!(PlanKey::bare(desc), PlanKey::bare(desc));

    let cache = PlanCache::new();
    let pa = cache.get_or_plan(ka, || build_plan(&engine, &wa));
    let pb = cache.get_or_plan(kb, || build_plan(&engine, &wb));
    assert!(!Arc::ptr_eq(&pa, &pb));
    assert_eq!(cache.stats().builds, 2);
}
