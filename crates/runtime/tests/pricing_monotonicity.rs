//! Property tests for the pricing layer: every format's cost model must
//! be non-increasing in sparsity (pruning more can only remove priced
//! work), and the int8 V:N:M model must price strictly below the f16
//! model for identical structure on bandwidth-bound shapes (half the
//! value/B bytes, half the `mma.sp` issues).
//!
//! Sparsity ladders use *nested* masks — each sparser mask is a subset
//! of the denser one — so the property isolates the model's response to
//! removed work from incidental structure changes.

use proptest::prelude::*;
use venom_core::SpmmOptions;
use venom_format::{BlockedEllMatrix, CsrMatrix, CvseMatrix, SparsityMask, VnmConfig, VnmMatrix};
use venom_fp16::Half;
use venom_runtime::pricing;
use venom_sim::DeviceConfig;
use venom_tensor::{random, Matrix};

fn dev() -> DeviceConfig {
    DeviceConfig::rtx3090()
}

/// A pseudo-random priority in [0, 100) per coordinate; keeping
/// `priority < keep_pct` yields nested masks across `keep_pct` values.
fn priority(i: usize, j: usize, seed: u64) -> usize {
    let h = i
        .wrapping_mul(0x9E37_79B9)
        .wrapping_add(j.wrapping_mul(0x85EB_CA6B))
        .wrapping_add(seed as usize);
    (h ^ (h >> 13) ^ (h >> 27)) % 100
}

fn unstructured(r: usize, k: usize, keep_pct: usize, seed: u64) -> Matrix<Half> {
    let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
    let mask = SparsityMask::from_fn(r, k, |i, j| priority(i, j, seed) < keep_pct);
    mask.apply_f32(&w).to_half()
}

/// A compliant V:2:M weight (keep the first two columns of each group).
fn vnm_weight(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> VnmMatrix {
    let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
    let mask = SparsityMask::from_fn(r, k, |_, c| c % cfg.m < cfg.n);
    VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// V:N:M: growing M (same V, same shape) removes stored values and
    /// gathered B rows — the priced launch must never get slower.
    #[test]
    fn vnm_price_non_increasing_in_sparsity(
        vexp in 0usize..2,
        seed in 0u64..100,
    ) {
        let v = 64 << vexp; // 64 or 128
        let (r, k, c) = (4 * v, 1600, 2048);
        let opts = SpmmOptions::default();
        let mut prev = f64::INFINITY;
        for m in [8usize, 10, 16, 20, 40] {
            let a = vnm_weight(r, k, VnmConfig::new(v, 2, m), seed);
            let t = pricing::price_vnm(&a, c, &opts, &dev())
                .expect("launchable V")
                .time_ms;
            prop_assert!(t <= prev, "V={v} M={m}: {t} > {prev}");
            prev = t;
        }
    }

    /// CSR (Sputnik model): pruning more entries from the same mask must
    /// never price slower.
    #[test]
    fn csr_price_non_increasing_in_sparsity(seed in 0u64..100) {
        let (r, k, c) = (512, 2048, 1024);
        let mut prev = f64::INFINITY;
        for keep in [50usize, 25, 10, 5, 2] {
            let w = unstructured(r, k, keep, seed);
            let t = pricing::price_csr(&CsrMatrix::from_dense(&w), c, &dev()).time_ms;
            prop_assert!(t <= prev, "keep={keep}%: {t} > {prev}");
            prev = t;
        }
    }

    /// CVSE (CLASP model): same nested ladder, fixed vector length.
    #[test]
    fn cvse_price_non_increasing_in_sparsity(seed in 0u64..100) {
        let (r, k, c) = (512, 2048, 1024);
        let mut prev = f64::INFINITY;
        for keep in [50usize, 25, 10, 5] {
            let w = unstructured(r, k, keep, seed);
            let t = pricing::price_cvse(&CvseMatrix::from_dense(&w, 8), c, &dev()).time_ms;
            prop_assert!(t <= prev, "keep={keep}%: {t} > {prev}");
            prev = t;
        }
    }

    /// Blocked-ELL: pruning whole blocks from the same block mask can
    /// only shrink `ell_width` — the priced time must follow.
    #[test]
    fn blocked_ell_price_non_increasing_in_sparsity(seed in 0u64..100) {
        let (r, k, c, bs) = (512, 2048, 1024, 16);
        let dense = random::normal_matrix(r, k, 0.0, 1.0, seed);
        let mut prev = f64::INFINITY;
        for keep in [80usize, 40, 20, 10] {
            let mask = SparsityMask::from_fn(r, k, |i, j| priority(i / bs, j / bs, seed) < keep);
            let w = mask.apply_f32(&dense).to_half();
            let t = pricing::price_blocked_ell(&BlockedEllMatrix::from_dense(&w, bs), c, &dev())
                .time_ms;
            prop_assert!(t <= prev, "keep={keep}%: {t} > {prev}");
            prev = t;
        }
    }

    /// The int8 model prices strictly below f16 for identical structure
    /// on bandwidth-bound shapes: both run the same autotuned template,
    /// i8 moves half the value/B bytes and issues half the `mma.sp`s.
    #[test]
    fn i8_prices_strictly_below_f16_for_identical_structure(
        vexp in 0usize..2,
        m in prop::sample::select(vec![8usize, 10, 20]),
        kmul in 1usize..3,
        seed in 0u64..100,
    ) {
        let v = 64 << vexp;
        let (r, k, c) = (2 * v, 1600 * kmul, 4096); // wide C: bandwidth-bound
        let opts = SpmmOptions::default();
        let a = vnm_weight(r, k, VnmConfig::new(v, 2, m), seed);
        let f16 = pricing::price_vnm(&a, c, &opts, &dev()).expect("launchable").time_ms;
        let i8 = pricing::price_vnm_i8(&a, c, &opts, &dev()).expect("launchable").time_ms;
        prop_assert!(i8 < f16, "V={v} M={m} k={k}: i8 {i8} !< f16 {f16}");
    }
}
