//! Roofline-aware dispatch: the properties the routing layer rests on.
//!
//! Three contracts, checked end to end through the public engine API:
//!
//! 1. **The ridge flip is monotone.** Sweeping the output width `c`
//!    across the device's ridge point flips the band kernel's
//!    [`venom_sim::Roofline::memory_bound`] from memory- to
//!    compute-bound *exactly once* — arithmetic intensity is strictly
//!    increasing in `c` under the band counts model, so there is one
//!    crossing, not a threshold band the router could oscillate in.
//! 2. **Winner pins.** The fig. 9 wide bound (c = 4096) stays on the
//!    Spatha `mma.sp` stream; the tall-skinny c = 8 bound routes to the
//!    band path — both as *emergent* outcomes of `plan_auto`'s cost
//!    minimisation, no hard-coded threshold anywhere.
//! 3. **Bit-exactness across the V x N:M grid.** The band replay and
//!    the swapped-operand per-call kernel agree with `spmm_ref` (and
//!    with the mma-stream plan) to the bit for every probed pattern.

use proptest::prelude::*;
use venom_runtime::{Engine, MatmulFormat, Regime, VnmConfig};
use venom_sim::DeviceConfig;
use venom_tensor::{random, Matrix};

fn dev() -> DeviceConfig {
    DeviceConfig::rtx3090()
}

/// A compliant V:2:M weight (keep the first two columns of each group).
fn vnm_dense(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> Matrix<venom_fp16::Half> {
    let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
    let mask = venom_format::SparsityMask::from_fn(r, k, |_, c| c % cfg.m < cfg.n);
    mask.apply_f32(&w).to_half()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sweeping `c` from 1 past the ridge point flips the band kernel's
    /// regime memory -> compute exactly once: the counts model charges
    /// `B` and the output linearly in `c` against a constant stream, so
    /// intensity is strictly increasing and there is a single crossing.
    #[test]
    fn band_regime_flips_exactly_once_across_the_ridge(
        r in prop::sample::select(vec![512usize, 768, 1024, 1536]),
        k in prop::sample::select(vec![512usize, 768, 1280]),
        m in prop::sample::select(vec![8usize, 10, 16]),
        seed in 0u64..1000,
    ) {
        let nnz = r * k * 2 / m; // the 2:M density of the stream
        let _ = seed;
        let mut flips = 0usize;
        let mut prev_bound = None;
        let mut prev_intensity = 0.0f64;
        let mut c = 1usize;
        while c <= 1 << 16 {
            let counts = venom_core::build_counts_band(r, k, c, nnz);
            let roof = venom_sim::roofline::analyze(&dev(), &counts);
            prop_assert!(
                roof.intensity > prev_intensity,
                "intensity must be strictly increasing in c (c={c})"
            );
            prev_intensity = roof.intensity;
            if let Some(prev) = prev_bound {
                match (prev, roof.memory_bound) {
                    (true, false) => flips += 1,
                    (false, true) => prop_assert!(
                        false,
                        "regime flipped back to memory-bound at c={c}"
                    ),
                    _ => {}
                }
            }
            prev_bound = Some(roof.memory_bound);
            c *= 2;
        }
        prop_assert_eq!(flips, 1, "r={} k={} m={}", r, k, m);
    }
}

#[test]
fn winner_pins_hold_on_both_sides_of_the_ridge() {
    let cfg = VnmConfig::new(128, 2, 10);
    let w = vnm_dense(1024, 768, cfg, 7);

    // Left of the ridge (the acceptance shape r=1024 k=768 c=8): the
    // band path must win and report the memory regime.
    let small = Engine::new(dev()).with_b_cols_hint(8);
    let plan = small.plan_auto_hinted(&small.descriptor(1024, 768), &w, Some(cfg));
    assert_eq!(plan.format(), MatmulFormat::Vnm);
    assert_eq!(plan.path(), "band", "cost {:?}", plan.cost_ms());
    assert_eq!(plan.regime(small.device()), Some(Regime::MemoryBound));

    // Right of the ridge (fig. 9's c=4096): the mma stream must win.
    let wide = Engine::new(dev()).with_b_cols_hint(4096);
    let plan = wide.plan_auto_hinted(&wide.descriptor(1024, 768), &w, Some(cfg));
    assert_eq!(plan.format(), MatmulFormat::Vnm);
    assert_eq!(plan.path(), "vnm", "cost {:?}", plan.cost_ms());
    assert_eq!(plan.regime(wide.device()), Some(Regime::ComputeBound));
}

#[test]
fn tall_skinny_routes_to_the_band_path() {
    // r >> c with low-reuse k: the mma pipeline cannot amortize its
    // staging traffic, the band stream can.
    let cfg = VnmConfig::new(64, 2, 8);
    let w = vnm_dense(2048, 512, cfg, 9);
    let engine = Engine::new(dev()).with_b_cols_hint(8);
    let plan = engine.plan_auto_hinted(&engine.descriptor(2048, 512), &w, Some(cfg));
    assert_eq!(plan.path(), "band", "cost {:?}", plan.cost_ms());
    let b = random::normal_matrix(512, 8, 0.0, 1.0, 10).to_half();
    assert_eq!(plan.run(&b), plan.run_oneshot(&b));
}

#[test]
fn band_paths_are_bit_identical_across_the_config_grid() {
    // The conformance grid: every probed V x N:M pattern must agree to
    // the bit between spmm_ref, the band plan's staged replay, the
    // swapped-operand per-call kernel, and the mma-stream plan.
    for &v in &[16usize, 32, 64, 128] {
        for &m in &[8usize, 10, 16] {
            let cfg = VnmConfig::new(v, 2, m);
            let (r, k) = (2 * v, 10 * m);
            let w = vnm_dense(r, k, cfg, (v * m) as u64);
            let engine = Engine::new(dev()).with_b_cols_hint(24);
            let desc = engine.descriptor(r, k);
            let band = engine
                .plan_band_hinted(&desc, &w, Some(cfg))
                .expect("K fits 16-bit indices");
            let mma = engine
                .plan_with_format(MatmulFormat::Vnm, &desc, &w)
                .expect("compliant structure");
            let b = random::normal_matrix(k, 24, 0.0, 1.0, (v + m) as u64).to_half();
            let reference = mma.run_oneshot(&b);
            assert_eq!(band.run(&b), reference, "V={v} M={m}: band replay");
            assert_eq!(
                band.run_oneshot(&b),
                reference,
                "V={v} M={m}: swapped kernel"
            );
            assert_eq!(mma.run(&b), reference, "V={v} M={m}: mma stream");
        }
    }
}
