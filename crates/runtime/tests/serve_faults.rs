//! The failure contract of the serving stack, enforced under injected
//! faults: every submitted request resolves to a result or a typed
//! [`ServeError`] — never a hang, never a lost request — and every
//! degraded dispatch is bit-identical to the planned path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use venom_format::{MatmulFormat, VnmConfig};
use venom_fp16::Half;
use venom_pruner::magnitude;
use venom_runtime::serve::{RequestQueue, ServeRequest};
use venom_runtime::{
    Engine, FaultConfig, FaultPlan, MatmulPlan, PlanCache, PlanKey, RetryPolicy, ServeConfig,
    ServeError, Server,
};
use venom_sim::DeviceConfig;
use venom_tensor::{random, Matrix};

fn engine(b_cols: usize) -> Engine {
    Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(b_cols)
}

fn planned_weight(
    r: usize,
    k: usize,
    seed: u64,
    engine: &Engine,
) -> (PlanKey, Arc<dyn MatmulPlan>) {
    let w = random::glorot_matrix(r, k, seed);
    let mask = magnitude::prune_vnm(&w, VnmConfig::new(16, 2, 8));
    let pruned = mask.apply_f32(&w).to_half();
    let plan = engine
        .plan_with_format(MatmulFormat::Vnm, &engine.descriptor(r, k), &pruned)
        .expect("V:N:M plan");
    (PlanKey::for_weight(*plan.descriptor(), &pruned), plan)
}

fn operand(k: usize, cols: usize, seed: u64) -> Matrix<Half> {
    random::activation_matrix(k, cols, seed).to_half()
}

/// A serve config tuned for fast fault tests: tight build timeout,
/// tight retry intervals.
fn fast_config() -> ServeConfig {
    ServeConfig::default()
        .with_build_timeout(Duration::from_millis(100))
        .with_retry(
            RetryPolicy::default()
                .with_intervals(Duration::from_micros(200), Duration::from_millis(2)),
        )
}

#[test]
fn failed_builds_degrade_to_the_per_call_baseline_bit_identically() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 1, &engine);
    let server = Server::start(
        fast_config().with_concurrency(2),
        Arc::new(PlanCache::new()),
    );
    // Every build attempt fails: the planned path is never available.
    server.register_degradable(
        key,
        || Err("injected build failure".to_string()),
        Arc::clone(&plan),
    );

    let handles: Vec<_> = (0..6)
        .map(|i| {
            let op = operand(64, 3, 10 + i);
            (op.clone(), server.submit(key, op).expect("submit"))
        })
        .collect();
    for (op, handle) in handles {
        let out = handle.wait().expect("degraded serve");
        assert_eq!(out, plan.run(&op), "degraded output differs from planned");
    }

    let report = server.shutdown();
    assert_eq!(report.served, 6);
    assert_eq!(
        report.degraded, 6,
        "every dispatch went through the fallback"
    );
    assert_eq!(report.errored, 0);
}

#[test]
fn failed_builds_without_a_baseline_deliver_a_typed_error() {
    let engine = engine(8);
    let (key, _plan) = planned_weight(64, 64, 2, &engine);
    let attempts = Arc::new(AtomicU64::new(0));
    let server = Server::start(
        fast_config().with_concurrency(1).with_retry(
            RetryPolicy::default()
                .with_max_retries(2)
                .with_intervals(Duration::from_micros(100), Duration::from_millis(1)),
        ),
        Arc::new(PlanCache::new()),
    );
    let counted = Arc::clone(&attempts);
    server.register_fallible(key, move || {
        counted.fetch_add(1, Ordering::Relaxed);
        Err("no plan for you".to_string())
    });

    let err = server
        .submit(key, operand(64, 2, 20))
        .expect("submit")
        .wait()
        .unwrap_err();
    match err {
        ServeError::BuildFailed { reason } => assert!(reason.contains("no plan for you")),
        other => panic!("expected BuildFailed, got {other:?}"),
    }
    assert_eq!(
        attempts.load(Ordering::Relaxed),
        3,
        "1 attempt + 2 retries on the configured policy"
    );
    let report = server.shutdown();
    assert_eq!(report.errored, 1);
}

#[test]
fn stalled_builds_time_out_degrade_and_land_for_later_requests() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 3, &engine);
    let server = Server::start(
        fast_config()
            .with_concurrency(1)
            .with_build_timeout(Duration::from_millis(20)),
        Arc::new(PlanCache::new()),
    );
    let stalled = Arc::clone(&plan);
    server.register_degradable(
        key,
        move || {
            // Far past the 20ms build timeout, but eventually succeeds.
            std::thread::sleep(Duration::from_millis(150));
            Ok(Arc::clone(&stalled))
        },
        Arc::clone(&plan),
    );

    // The first request cannot wait for the build: it must be served
    // degraded, and fast.
    let op = operand(64, 2, 30);
    let out = server
        .submit(key, op.clone())
        .expect("submit")
        .wait()
        .expect("degraded serve");
    assert_eq!(out, plan.run(&op), "degraded output differs");

    // The abandoned build keeps running in the background; once it
    // lands, requests go back to the planned path.
    std::thread::sleep(Duration::from_millis(250));
    let op2 = operand(64, 2, 31);
    let out2 = server
        .submit(key, op2.clone())
        .expect("submit")
        .wait()
        .expect("planned serve");
    assert_eq!(out2, plan.run(&op2));

    let stats = server.cache().stats();
    assert_eq!(stats.builds, 1, "the stalled build completed exactly once");
    assert!(
        stats.build_timeouts >= 1,
        "the wait was abandoned: {stats:?}"
    );
    let report = server.shutdown();
    assert_eq!(report.served, 2);
    assert!(
        report.degraded >= 1 && report.degraded < report.served,
        "first degraded, later planned: {report:?}"
    );
}

#[test]
fn run_panics_are_contained_and_workers_respawn() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 4, &engine);
    let (clean_key, clean_plan) = planned_weight(64, 64, 5, &engine);
    assert_ne!(key, clean_key);
    let server = Server::start(
        fast_config().with_concurrency(2).with_restart_budget(16),
        Arc::new(PlanCache::new()),
    );
    // Every planned dispatch through this key panics mid-run.
    let cfg = FaultConfig {
        run_panic: 1.0,
        ..FaultConfig::with_seed(7)
    };
    let faulty = Arc::clone(&plan);
    server.register(key, move || FaultPlan::wrap(Arc::clone(&faulty), cfg));
    let registered = Arc::clone(&clean_plan);
    server.register(clean_key, move || Arc::clone(&registered));

    for i in 0..4 {
        let err = server
            .submit(key, operand(64, 2, 40 + i))
            .expect("submit")
            .wait()
            .unwrap_err();
        assert_eq!(err, ServeError::WorkerPanicked, "request {i}");
    }

    let health = server.health();
    assert!(health.worker_panics >= 4, "{health:?}");
    // The 4th panic's respawn bookkeeping may still be in flight when
    // the client wakes; the first 3 respawns must have happened for the
    // later requests to have been dispatched at all.
    assert!(health.worker_restarts >= 3, "{health:?}");
    assert!(
        health.live_workers >= 1,
        "respawn kept the pool alive: {health:?}"
    );

    // The server survived: a clean key still serves through it.
    let op = operand(64, 2, 50);
    let out = server
        .submit(clean_key, op.clone())
        .expect("submit")
        .wait()
        .expect("clean serve after panics");
    assert_eq!(out, clean_plan.run(&op));

    let report = server.shutdown();
    assert_eq!(report.served, 1);
    assert_eq!(report.errored, 4);
    assert!(report.worker_restarts >= 4);
}

#[test]
fn expired_requests_are_answered_without_consuming_batch_slots() {
    let engine = engine(8);
    let (key, _plan) = planned_weight(64, 64, 6, &engine);
    let queue = RequestQueue::bounded(8);

    let (live1, h1) = ServeRequest::new(key, operand(64, 2, 60));
    let (dead, h_dead) = ServeRequest::new(key, operand(64, 2, 61));
    let (live2, h2) = ServeRequest::new(key, operand(64, 2, 62));
    let dead = dead.with_deadline_at(Instant::now() - Duration::from_millis(1));
    for req in [live1, dead, live2] {
        queue.try_submit(req).map_err(|(e, _)| e).expect("capacity");
    }

    let batch = queue.pop_coalesced(8).expect("live requests remain");
    assert_eq!(batch.len(), 2, "the expired request took no batch slot");
    assert_eq!(
        h_dead.poll(),
        Some(Err(ServeError::DeadlineExceeded)),
        "expired request was answered at dequeue"
    );
    assert_eq!(queue.expired_count(), 1);
    drop((h1, h2));
}

#[test]
fn wait_timeout_bounds_the_client_and_the_late_result_is_not_lost() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 7, &engine);
    let server = Server::start(
        fast_config().with_concurrency(1),
        Arc::new(PlanCache::new()),
    );
    // Every dispatch sleeps well past the client's wait budget.
    let cfg = FaultConfig {
        run_slow: 1.0,
        slow_ms: 100,
        ..FaultConfig::with_seed(11)
    };
    let slow = Arc::clone(&plan);
    server.register(key, move || FaultPlan::wrap(Arc::clone(&slow), cfg));

    let op = operand(64, 2, 70);
    let handle = server.submit(key, op.clone()).expect("submit");
    let bounded = Instant::now();
    assert_eq!(
        handle.wait_timeout(Duration::from_millis(5)),
        Err(ServeError::DeadlineExceeded),
        "the wait must give up, not block on the slow dispatch"
    );
    assert!(
        bounded.elapsed() < Duration::from_millis(80),
        "wait_timeout overshot its bound: {:?}",
        bounded.elapsed()
    );
    // The handle stays live: the slow dispatch still delivers.
    let out = handle
        .wait_timeout(Duration::from_secs(5))
        .expect("late result");
    assert_eq!(out, plan.run(&op), "late result has the right bits");
    server.shutdown();
}

#[test]
fn load_shedding_answers_the_worst_deadline_request() {
    let engine = engine(8);
    let (key, _plan) = planned_weight(64, 64, 8, &engine);
    let queue = RequestQueue::bounded(8).with_shed_watermark(Some(2));

    let far = Instant::now() + Duration::from_secs(60);
    let near = Instant::now() + Duration::from_millis(50);
    let (r1, h1) = ServeRequest::new(key, operand(64, 2, 80));
    let (r2, h2) = ServeRequest::new(key, operand(64, 2, 81));
    let (r3, h3) = ServeRequest::new(key, operand(64, 2, 82));
    queue
        .try_submit(r1.with_deadline_at(far))
        .map_err(|(e, _)| e)
        .expect("depth 1");
    queue
        .try_submit(r2.with_deadline_at(near))
        .map_err(|(e, _)| e)
        .expect("depth 2");
    // Depth would cross the watermark: the soonest-deadline request (r2)
    // is shed to make room.
    queue
        .try_submit(r3.with_deadline_at(far))
        .map_err(|(e, _)| e)
        .expect("admitted over the shed victim");

    assert_eq!(queue.len(), 2);
    assert_eq!(queue.shed_count(), 1);
    assert_eq!(h2.poll(), Some(Err(ServeError::Shed { watermark: 2 })));
    assert_eq!(h1.poll(), None, "far-deadline requests stay queued");
    assert_eq!(h3.poll(), None);
}

/// Satellite regression: shutting down with requests in flight and no
/// live workers must deliver `ShuttingDown` to every undelivered handle.
/// Before supervision-aware shutdown this hung forever (the stranded
/// requests sat in a queue no worker would ever drain).
#[test]
fn shutdown_flushes_stranded_requests_after_the_last_worker_dies() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 9, &engine);
    let server = Server::start(
        fast_config().with_concurrency(1).with_restart_budget(0),
        Arc::new(PlanCache::new()),
    );
    let cfg = FaultConfig {
        run_panic: 1.0,
        ..FaultConfig::with_seed(13)
    };
    let faulty = Arc::clone(&plan);
    server.register(key, move || FaultPlan::wrap(Arc::clone(&faulty), cfg));

    // Kill the only worker (restart budget 0: no replacement).
    let err = server
        .submit(key, operand(64, 2, 90))
        .expect("submit")
        .wait()
        .unwrap_err();
    assert_eq!(err, ServeError::WorkerPanicked);
    assert_eq!(server.health().live_workers, 0, "the pool is dead");

    // These requests can never be served; they must still be answered.
    let stranded: Vec<_> = (0..3)
        .map(|i| server.submit(key, operand(64, 2, 91 + i)).expect("submit"))
        .collect();
    let report = server.shutdown();
    for handle in stranded {
        assert_eq!(
            handle.wait_timeout(Duration::from_secs(1)),
            Err(ServeError::ShuttingDown),
            "stranded handle must resolve, not hang"
        );
    }
    assert_eq!(report.errored, 4, "1 panicked + 3 flushed at shutdown");
}

/// The acceptance-criteria race test: 8 client threads against a server
/// with every fault type enabled at once. The contract is total
/// resolution — each of the 64 requests ends in a bit-identical result
/// or a typed error, with the test's own completion proving no hang.
#[test]
fn every_request_resolves_under_a_full_fault_storm() {
    let engine = engine(8);
    let (key, plan) = planned_weight(64, 64, 14, &engine);
    let cfg = FaultConfig::parse(
        "seed=42,build-fail=0.4,build-stall=0.3,stall-ms=30,run-panic=0.25,run-slow=0.25,slow-ms=3",
    )
    .expect("valid spec");
    let server = Arc::new(Server::start(
        fast_config()
            .with_concurrency(4)
            .with_max_batch(4)
            .with_queue_capacity(128)
            .with_restart_budget(64)
            .with_build_timeout(Duration::from_millis(15)),
        Arc::new(PlanCache::new()),
    ));
    let build = {
        let plan = Arc::clone(&plan);
        move || Arc::clone(&plan)
    };
    server.register_degradable(key, cfg.wrap_builder(build), Arc::clone(&plan));

    let mut ok = 0u64;
    let mut typed_errors = 0u64;
    std::thread::scope(|s| {
        let clients: Vec<_> = (0u64..8)
            .map(|c| {
                let server = Arc::clone(&server);
                let plan = Arc::clone(&plan);
                s.spawn(move || {
                    let mut outcomes = (0u64, 0u64);
                    for i in 0u64..8 {
                        let op = operand(64, 2, 1000 + c * 8 + i);
                        match server.submit_retry(key, op.clone(), RetryPolicy::default()) {
                            Ok(handle) => {
                                match handle.wait_timeout(Duration::from_secs(20)) {
                                    Ok(out) => {
                                        assert_eq!(
                                            out,
                                            plan.run(&op),
                                            "served bits differ under faults"
                                        );
                                        outcomes.0 += 1;
                                    }
                                    // A typed error IS a resolution; a
                                    // 20s stall would mean a hang.
                                    Err(ServeError::DeadlineExceeded) => {
                                        panic!("request hung past 20s: lost request")
                                    }
                                    Err(_) => outcomes.1 += 1,
                                }
                            }
                            Err(_) => outcomes.1 += 1,
                        }
                    }
                    outcomes
                })
            })
            .collect();
        for client in clients {
            let (o, e) = client.join().expect("client thread");
            ok += o;
            typed_errors += e;
        }
    });

    assert_eq!(ok + typed_errors, 64, "every request accounted for");
    assert!(
        ok > 0,
        "the storm still served something (degradation works)"
    );
    let server = Arc::into_inner(server).expect("all clients joined");
    let report = server.shutdown();
    assert_eq!(report.served + report.errored, 64, "{report:?}");
}
