//! End-to-end tour of the int8 quantized path, and the generator of the
//! EXPERIMENTS.md int8-vs-f16 accuracy table.
//!
//! For each Fig. 9 layer shape and each calibrator, quantizes a
//! magnitude-pruned V:N:M weight, plans the i32-accumulating dispatch,
//! and reports max-abs / relative error of the dequantized output
//! against the f16 planned path, plus wall time of both.
//!
//! Run: `cargo run --release --example quantized_path`

use std::time::Instant;
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::quant::Calibration;
use venom::tensor::random;

fn main() {
    let dev = DeviceConfig::rtx3090();
    let c = 4096;
    println!("int8 vs f16 on the Fig. 9 shapes (R=1024, C={c}), both calibrators\n");
    println!(
        "{:<22} {:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "shape", "calib", "max-abs err", "rel-frob err", "f16 ms", "i8 ms", "i8 model ms"
    );
    for (k, cfg) in [
        (768usize, VnmConfig::new(128, 2, 10)),
        (1536, VnmConfig::new(128, 2, 10)),
        (3072, VnmConfig::new(128, 2, 20)),
    ] {
        let w = random::glorot_matrix(1024, k, 1);
        let mask = magnitude::prune_vnm(&w, cfg);
        let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
        let b = random::normal_matrix(k, c, 0.0, 1.0, 2).to_half();
        let engine = Engine::new(dev.clone()).with_b_cols_hint(c);
        let fplan = engine.plan_spmm(&a);
        let y_f16 = fplan.run(&b);
        let t0 = Instant::now();
        let _ = std::hint::black_box(fplan.run(&b));
        let f16_ms = t0.elapsed().as_secs_f64() * 1e3;
        for calib in [Calibration::AbsMax, Calibration::Percentile(99.5)] {
            let qplan = engine.clone().with_calibration(calib).plan_quant_spmm(&a);
            let y_i8 = MatmulPlan::run(&qplan, &b);
            let t0 = Instant::now();
            let _ = std::hint::black_box(MatmulPlan::run(&qplan, &b));
            let i8_ms = t0.elapsed().as_secs_f64() * 1e3;
            let max_abs = venom::tensor::norms::max_abs_diff(&y_i8, &y_f16);
            let rel = venom::tensor::norms::rel_frobenius_error(&y_i8, &y_f16);
            println!(
                "{:<22} {:<8} {:>12.4} {:>12.5} {:>12.1} {:>12.1} {:>12.3}",
                format!("1024x{k} {cfg}"),
                calib.to_string(),
                max_abs,
                rel,
                f16_ms,
                i8_ms,
                qplan.timing().map(|t| t.time_ms).unwrap_or(f64::NAN),
            );
        }
    }
    println!(
        "\n(max-abs and relative Frobenius error of the dequantized int8 output vs the\n\
         f16 planned path; wall times are one functional CPU dispatch; 'i8 model ms'\n\
         is the simulated GPU launch the engine prices plans with)"
    );
}
