//! The full second-order pruning pipeline of §6: train a model, compute
//! per-sample gradients, build the block-diagonal empirical Fisher, prune
//! with the structure-decay schedule, fine-tune under the mask, and
//! compare against one-shot and magnitude pruning.
//!
//! Run with: `cargo run --release --example pruning_pipeline`

use venom::dnn::train::{gaussian_clusters_split, Mlp};
use venom::format::SparsityMask;
use venom::prelude::*;
use venom::pruner::scheduler::{DecayStep, StructureDecayScheduler};
use venom::pruner::{
    energy, magnitude, prune_nm_second_order, prune_vnm_second_order, SecondOrderOptions,
};
use venom::tensor::Matrix;

const DIM: usize = 48;
const HIDDEN: usize = 128;
const CLASSES: usize = 6;

fn apply(mlp: &mut Mlp, mask: &SparsityMask, weights: &Matrix<f32>) {
    for j in 0..HIDDEN {
        for d in 0..DIM {
            mlp.w1.set(
                j,
                d,
                if mask.get(j, d) {
                    weights.get(j, d)
                } else {
                    0.0
                },
            );
        }
    }
}

fn main() {
    let (train, test) = gaussian_clusters_split(60, 30, DIM, CLASSES, 1.8, 1);

    let mut dense = Mlp::new(DIM, HIDDEN, CLASSES, 3);
    dense.train(&train, 400, 0.4, None);
    println!("dense accuracy: {:.3}", dense.accuracy(&test));

    let target = VnmConfig::new(64, 2, 16); // 87.5% sparsity
    let opts = SecondOrderOptions::default();

    // --- Gradual second-order pruning (the paper's recipe) ----------------
    let mut gradual = dense.clone();
    let sched = StructureDecayScheduler::halving(target);
    println!(
        "structure decay schedule: {:?}",
        sched
            .steps()
            .iter()
            .map(|s| format!("N={} ({:.0}%)", s.n(), 100.0 * s.sparsity()))
            .collect::<Vec<_>>()
    );
    for step in sched.steps() {
        let grads = gradual.per_sample_w1_grads(&train);
        let (mask, updated) = match step {
            DecayStep::Nm(nm) => prune_nm_second_order(&gradual.w1, &grads, *nm, &opts),
            DecayStep::Vnm(v) => prune_vnm_second_order(&gradual.w1, &grads, *v, &opts),
        };
        apply(&mut gradual, &mask, &updated);
        gradual.train(&train, 150, 0.4, Some(&mask));
        println!(
            "  after N={} step: accuracy {:.3}, w1 energy {:.3}",
            step.n(),
            gradual.accuracy(&test),
            energy(&dense.w1, &mask)
        );
    }

    // --- One-shot second-order --------------------------------------------
    let mut oneshot = dense.clone();
    let grads = oneshot.per_sample_w1_grads(&train);
    let (mask_os, updated_os) = prune_vnm_second_order(&oneshot.w1, &grads, target, &opts);
    apply(&mut oneshot, &mask_os, &updated_os);
    oneshot.train(&train, 450, 0.4, Some(&mask_os));

    // --- One-shot magnitude -------------------------------------------------
    let mut mag = dense.clone();
    let mask_mag = magnitude::prune_vnm(&mag.w1, target);
    let snapshot = mag.w1.clone();
    apply(&mut mag, &mask_mag, &snapshot);
    mag.train(&train, 450, 0.4, Some(&mask_mag));

    println!(
        "\nfinal accuracy at {target} ({:.1}% sparsity):",
        100.0 * target.sparsity()
    );
    println!("  gradual 2nd-order : {:.3}", gradual.accuracy(&test));
    println!("  one-shot 2nd-order: {:.3}", oneshot.accuracy(&test));
    println!("  one-shot magnitude: {:.3}", mag.accuracy(&test));
    println!("(paper shape: gradual second-order recovers best)");

    // The pruned weight can now feed the kernel directly.
    let sparse = VnmMatrix::compress(
        &gradual.w1.to_half(),
        &SparsityMask::from_nonzeros(&gradual.w1),
        target,
    );
    println!(
        "\ncompressed pruned w1: {} stored values, compression {:.1}x",
        sparse.nnz(),
        sparse.compression_ratio()
    );
}
