//! Sparse transformer inference: functionally run a miniature encoder
//! block with dense and V:N:M-sparse attention projections (the pruned
//! MHA of Fig. 14), then price the real model sizes of the paper's
//! case study on the simulated device.
//!
//! Run with: `cargo run --release --example transformer_inference`

use venom::dnn::attention::MultiHeadAttention;
use venom::dnn::profile::{profile_model, WeightSparsity};
use venom::dnn::transformer::{EncoderBlock, TransformerConfig};
use venom::prelude::*;
use venom::tensor::random;

fn main() {
    let device = DeviceConfig::rtx3090();

    // --- Functional miniature: a 64-hidden encoder block -----------------
    let mini = TransformerConfig::new("mini", 64, 4, 2, 128, 32);
    let block = EncoderBlock::dense(&mini, 1);
    let x = random::activation_matrix(32, 64, 9);
    let y_dense = block.forward(&x);

    // Sparsify the attention projections to 16:2:8 (planning the
    // compressed weights on the serving engine) and re-run.
    let engine = Engine::new(device.clone()).with_b_cols_hint(32);
    let mut sparse_mha = MultiHeadAttention::dense(64, 4, 1);
    sparse_mha.sparsify(&engine, VnmConfig::new(16, 2, 8));
    let y_attn = sparse_mha.forward(&x);
    println!(
        "mini encoder: dense output norm {:.3}, sparse-MHA output norm {:.3} (both finite: {})",
        venom::tensor::norms::frobenius(&y_dense),
        venom::tensor::norms::frobenius(&y_attn),
        y_attn.as_slice().iter().all(|v| v.is_finite())
    );

    // --- Paper-scale latency study (Fig. 15 workloads) -------------------
    for (cfg, batch, layers) in [
        (TransformerConfig::bert_large(), 32usize, 24usize),
        (TransformerConfig::gpt2_large(), 8, 36),
        (TransformerConfig::gpt3_175b(), 1, 1),
    ] {
        let dense = profile_model(&cfg, batch, layers, WeightSparsity::Dense, &device);
        let sparse = profile_model(
            &cfg,
            batch,
            layers,
            WeightSparsity::Vnm(VnmConfig::new(64, 2, 16)),
            &device,
        );
        println!(
            "\n{} (bs={batch}, {layers} layer(s)) on {}:",
            cfg.name, device.name
        );
        println!(
            "  dense : total {:7.1} ms  (GEMMs {:6.1} | matmul {:5.1} | softmax {:5.1} | others {:5.1})",
            dense.total_ms(),
            dense.gemms_ms,
            dense.attn_matmul_ms,
            dense.softmax_ms,
            dense.others_ms
        );
        println!(
            "  64:2:16: total {:7.1} ms  (GEMMs {:6.1} | matmul {:5.1} | softmax {:5.1} | others {:5.1})",
            sparse.total_ms(),
            sparse.gemms_ms,
            sparse.attn_matmul_ms,
            sparse.softmax_ms,
            sparse.others_ms
        );
        println!(
            "  GEMM speedup {:.2}x, end-to-end speedup {:.2}x",
            dense.gemms_ms / sparse.gemms_ms,
            dense.total_ms() / sparse.total_ms()
        );
    }
}
