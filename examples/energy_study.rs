//! Energy study (§5): how much weight magnitude each pruning policy
//! preserves at a given sparsity, on a BERT-shaped weight tensor — the
//! flexibility argument for the V:N:M format, plus a device comparison
//! showing the kernel-side consequences on two GPUs.
//!
//! Run with: `cargo run --release --example energy_study`

use venom::prelude::*;
use venom::pruner::{energy, magnitude};
use venom::spatha::{spmm_time_tuned, SpmmOptions};
use venom::tensor::random;

fn main() {
    let w = random::glorot_matrix(768, 768, 2023);

    println!("energy preserved at 80% sparsity (2:10), 768x768 weight:");
    let ideal = energy(&w, &magnitude::prune_unstructured(&w, 0.8));
    println!("  unstructured (ideal): {ideal:.3}");
    for v in [1usize, 16, 32, 64, 128] {
        let e = energy(&w, &magnitude::prune_vnm(&w, VnmConfig::new(v, 2, 10)));
        println!("  {v:>3}:2:10            : {e:.3}");
    }
    for l in [4usize, 8, 16, 32] {
        let e = energy(&w, &magnitude::prune_vectorwise(&w, l, 0.8));
        println!("  vw_{l:<2}               : {e:.3}");
    }
    println!("(paper: V:N:M sits between unstructured and vector-wise, and");
    println!(" tolerates V = 128 while beating vw_8 and vw_4)");

    // The flexibility/performance trade: larger V preserves less energy but
    // the kernel timing barely changes — that is why the paper can afford
    // V = 128.
    println!("\nkernel time at 1024 x 4096 x 4096, 2:10, per V:");
    for dev in [DeviceConfig::rtx3090(), DeviceConfig::a100()] {
        print!("  {:<38}", dev.name);
        for v in [32usize, 64, 128] {
            let t = spmm_time_tuned(
                1024,
                4096,
                4096,
                VnmConfig::new(v, 2, 10),
                &SpmmOptions::default(),
                &dev,
            );
            print!(" V={v}: {:.3} ms", t.time_ms);
        }
        println!();
    }
}
