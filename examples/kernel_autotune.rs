//! Template autotuning: enumerate Spatha tile configurations for one
//! problem, price them on the cost model, and compare the winner with the
//! rule-based default — the Rust equivalent of picking a CUDA template
//! specialisation.
//!
//! Run with: `cargo run --release --example kernel_autotune`

use venom::prelude::*;
use venom::spatha::{autotune, build_counts, default_config, SpmmOptions};
use venom::tensor::random;

fn main() {
    let device = DeviceConfig::rtx3090();
    let cfg = VnmConfig::new(128, 2, 16);

    for (r, k, c, label) in [
        (1024usize, 4096usize, 4096usize, "BERT-large square-ish"),
        (1024, 12288, 512, "long-K, narrow output"),
        (4096, 1024, 8192, "short-K, wide output"),
    ] {
        println!("\n=== {label}: {r} x {k} x {c}, pattern {cfg} ===");
        let w = random::glorot_matrix(r, k, 1);
        let mask = venom::pruner::magnitude::prune_vnm(&w, cfg);
        let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);

        let opts = SpmmOptions::default();
        let def = default_config(&a, c, &device);
        let def_counts = build_counts(&a, c, &def, &opts);
        let def_ms = venom::sim::pipeline::simulate(&device, &def_counts)
            .unwrap()
            .time_ms;

        let (best, best_ms) = autotune(&a, c, &opts, &device);
        println!("default  {def}: {def_ms:.3} ms");
        println!(
            "autotuned {best}: {best_ms:.3} ms ({:.1}% faster)",
            100.0 * (def_ms - best_ms) / def_ms
        );

        let timing =
            venom::sim::pipeline::simulate(&device, &build_counts(&a, c, &best, &opts)).unwrap();
        println!(
            "  limiter {:?}, waves {:.2}, pipeline efficiency {:.2}, {:.1} TFLOP/s effective",
            timing.limiter, timing.waves, timing.pipeline_efficiency, timing.tflops
        );
    }
}
