//! Structured sparse attention with V:N:M — the DFSS-style mechanism the
//! paper cites (Chen et al., PPoPP'23) generalised beyond 2:4:
//!
//! 1. `S = sddmm(Q, K^T, pattern)` — only the selected score positions are
//!    computed, emitted directly in the compressed V:N:M layout;
//! 2. row-softmax over the surviving scores;
//! 3. `O = spmm(P, V)` — the probabilities multiply the value matrix
//!    through the Spatha kernel.
//!
//! Run with: `cargo run --release --example sparse_attention`

use venom::format::SparsityMask;
use venom::prelude::*;
use venom::spatha::{sddmm, spmm, ExecMode, SpmmOptions};
use venom::tensor::{gemm, norms, random};

fn main() {
    let device = DeviceConfig::rtx3090();
    let (seq, d_head) = (128usize, 64usize);
    let cfg = VnmConfig::new(16, 2, 8); // 75% of attention scores pruned

    let q = random::activation_matrix(seq, d_head, 1).to_half();
    let kt = random::activation_matrix(d_head, seq, 2).to_half();
    let v = random::activation_matrix(seq, d_head, 3).to_half();

    // Dynamic pattern: keep the strongest score columns per V x M block,
    // estimated from the full product (a real kernel would fuse this).
    let probe = gemm::gemm_ref(&q, &kt);
    let mask: SparsityMask = venom::pruner::magnitude::prune_vnm(&probe, cfg);
    println!(
        "attention pattern {cfg}: keeping {:.1}% of {}x{} scores",
        100.0 * mask.density(),
        seq,
        seq
    );

    // 1. Sampled score computation.
    let scores = sddmm(&q, &kt, &mask, cfg, ExecMode::Functional, &device);
    println!(
        "sddmm: {:.4} ms simulated ({:?})",
        scores.timing.time_ms, scores.timing.limiter
    );

    // 2. Softmax over the surviving entries (dense staging for clarity).
    let scale = 1.0 / (d_head as f32).sqrt();
    let mut dense_scores = scores.out.decompress().to_f32().map(|s| s * scale);
    for r in 0..seq {
        let row = dense_scores.row_mut(r);
        let max = row
            .iter()
            .enumerate()
            .filter(|(c, _)| mask.get(r, *c))
            .map(|(_, &x)| x)
            .fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for (c, x) in row.iter_mut().enumerate() {
            if mask.get(r, c) {
                *x = (*x - max).exp();
                sum += *x;
            } else {
                *x = 0.0;
            }
        }
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    let probs = VnmMatrix::compress(&dense_scores.to_half(), &mask, cfg);

    // 3. Probabilities x values through Spatha.
    let out = spmm(&probs, &v, &SpmmOptions::default(), &device);
    println!(
        "spmm:  {:.4} ms simulated ({:?})",
        out.timing.time_ms, out.timing.limiter
    );

    // Verify against the dense attention on the same (masked) scores.
    let reference = gemm::gemm_ref(&probs.decompress(), &v);
    let err = norms::rel_frobenius_error(&out.c, &reference);
    println!(
        "output {}x{}, relative error vs reference: {err:.2e}",
        out.c.rows(),
        out.c.cols()
    );
    assert!(err < 1e-5);

    // Compare with fully dense attention cost at the same sizes.
    let dense_scores_t =
        venom::baselines::DenseGemm::time(GemmShape::new(seq, d_head, seq), &device);
    let dense_ctx_t = venom::baselines::DenseGemm::time(GemmShape::new(seq, seq, d_head), &device);
    println!(
        "dense attention matmuls would cost {:.4} ms; sparse pipeline {:.4} ms",
        dense_scores_t.time_ms + dense_ctx_t.time_ms,
        scores.timing.time_ms + out.timing.time_ms
    );
}
