//! Quickstart: prune a weight matrix to V:N:M, compress it, multiply it
//! against dense activations on the simulated RTX 3090, and verify the
//! result against a dense reference.
//!
//! Run with: `cargo run --release --example quickstart`

use venom::prelude::*;
use venom::pruner::{energy, magnitude};
use venom::tensor::{gemm, norms, random};

fn main() {
    // A "trained" weight matrix: 512 x 1024, Glorot-shaped magnitudes.
    let weight = random::glorot_matrix(512, 1024, 42);

    // Prune to 64:2:16 — 87.5% sparsity, far beyond the hardware's 2:4.
    let cfg = VnmConfig::new(64, 2, 16);
    let mask = magnitude::prune_vnm(&weight, cfg);
    println!("pattern {cfg}: sparsity {:.1}%", 100.0 * mask.sparsity());
    println!("energy preserved: {:.3}", energy(&weight, &mask));

    // Compress to the paper's three structures.
    let sparse = VnmMatrix::compress(&mask.apply_f32(&weight).to_half(), &mask, cfg);
    println!(
        "compressed: values {} B + m-indices {} B + column-loc {} B ({:.1}x smaller than dense)",
        sparse.values_bytes(),
        sparse.m_indices_bytes(),
        sparse.column_loc_bytes(),
        sparse.compression_ratio()
    );

    // Multiply against activations on the simulated device.
    let activations = random::activation_matrix(1024, 256, 7).to_half();
    let device = DeviceConfig::rtx3090();
    let out = venom::spatha::spmm(&sparse, &activations, &SpmmOptions::default(), &device);

    println!(
        "Spatha {}: {:.3} ms simulated on {} ({:.1} effective TFLOP/s, limited by {:?})",
        out.tile, out.timing.time_ms, device.name, out.timing.tflops, out.timing.limiter
    );

    // Verify against the dense reference on the pruned weights.
    let reference = gemm::gemm_ref(&sparse.decompress(), &activations);
    let err = norms::rel_frobenius_error(&out.c, &reference);
    println!("relative error vs dense reference: {err:.2e}");
    assert!(err < 1e-6, "functional execution must match the reference");

    // And compare with the dense GEMM's simulated time.
    let dense_w = weight.to_half();
    let dense = venom::baselines::DenseGemm::run(
        &dense_w,
        &activations,
        &device,
        venom::baselines::Mode::ModelOnly,
    );
    println!(
        "dense cuBLAS model: {:.3} ms -> speedup {:.2}x (theoretical cap for 2:16 is {:.0}x)",
        dense.timing.time_ms,
        dense.timing.time_ms / out.timing.time_ms,
        cfg.theoretical_speedup_cap()
    );
}
