//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build environment has no access to crates.io, so the external
//! dependencies are replaced by small vendored crates with the same names
//! and call signatures (see `vendor/README.md`). This one provides:
//!
//! * [`rngs::StdRng`] — a seeded deterministic generator (SplitMix64; the
//!   real `StdRng` is a ChaCha variant, but no caller depends on the exact
//!   stream, only on seed-reproducibility).
//! * [`SeedableRng::seed_from_u64`] / [`Rng::gen`] / [`Rng::gen_range`] —
//!   the three entry points `venom-tensor`'s generators call.
//!
//! The streams are stable across runs and platforms, which is exactly the
//! property the experiments need (every matrix fill is seeded).

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain (shim for
/// `rand::distributions::Standard` coverage of `Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Types samplable uniformly from a half-open range (shim for
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one value from `[range.start, range.end)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<Self>) -> Self;
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample over the type's natural domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_range(self, range)
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<f32>) -> f32 {
        let u = f64::sample(rng) as f32;
        // Clamp below end: rounding of start + u*width can hit end exactly.
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<f64>) -> f64 {
        let v = range.start + f64::sample(rng) * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: core::ops::Range<$t>) -> $t {
                let width = (range.end as u128).wrapping_sub(range.start as u128);
                // Modulo bias is < 2^-64 for every width this workspace uses.
                let off = (rng.next_u64() as u128) % width;
                (range.start as u128 + off) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

pub mod rngs {
    //! Concrete generators.

    /// Deterministic seeded generator (SplitMix64), shim for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // add + two xor-shift-multiplies per draw.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&x), "{x}");
            let n = rng.gen_range(3usize..17);
            assert!((3..17).contains(&n), "{n}");
        }
    }

    #[test]
    fn gen_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean={mean}");
    }
}
