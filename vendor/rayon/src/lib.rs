//! Offline shim for the subset of the `rayon` crate API this workspace uses.
//!
//! The build environment has no access to crates.io (see `vendor/README.md`),
//! so this crate re-implements the three parallel-iterator shapes the
//! kernels actually call, with real data parallelism on scoped OS threads:
//!
//! * `slice.par_chunks_mut(n).enumerate().for_each(f)` — the SM-grid loops
//!   of `venom-core::kernel` and `venom-tensor::gemm_parallel`;
//! * `vec.par_iter().map(f).collect()` — Fisher block inversion;
//! * `(0..n).into_par_iter().map(f).collect()` — per-block OBS pruning.
//!
//! Unlike real rayon there is no work-stealing pool: each call site splits
//! its items into `available_parallelism()` contiguous batches and runs one
//! scoped thread per batch. That preserves rayon's two load-bearing
//! guarantees — disjoint `&mut` chunks and order-preserving `collect` —
//! with bounded thread counts and no unsafe code.

use std::thread;

/// Number of worker threads a parallel call may use.
fn max_threads() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` over every item, in parallel batches, returning results in the
/// input order.
fn par_map_vec<I, B, F>(items: Vec<I>, f: &F) -> Vec<B>
where
    I: Send,
    B: Send,
    F: Fn(I) -> B + Sync,
{
    let n = items.len();
    let threads = max_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let per = n.div_ceil(threads);
    let mut batches: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let batch: Vec<I> = it.by_ref().take(per).collect();
        if batch.is_empty() {
            break;
        }
        batches.push(batch);
    }
    thread::scope(|s| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| s.spawn(move || batch.into_iter().map(f).collect::<Vec<B>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon-shim worker panicked"))
            .collect()
    })
}

/// A materialized "parallel" iterator: the full item list plus the deferred
/// combinator chain. All shim iterators reduce to this.
pub struct ParIter<I: Send> {
    items: Vec<I>,
}

impl<I: Send> ParIter<I> {
    /// Pairs each item with its index (order-preserving).
    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    /// Deferred map; executed in parallel by the consuming call.
    pub fn map<B: Send, F: Fn(I) -> B + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        par_map_vec(self.items, &|item| f(item));
    }

    /// Collects the items (already materialized) into `C`.
    pub fn collect<C: FromIterator<I>>(self) -> C {
        self.items.into_iter().collect()
    }
}

/// A mapped parallel iterator (see [`ParIter::map`]).
pub struct ParMap<I: Send, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParMap<I, F> {
    /// Executes the map in parallel and collects results in input order.
    pub fn collect<B, C>(self) -> C
    where
        B: Send,
        F: Fn(I) -> B + Sync,
        C: FromIterator<B>,
    {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }
}

/// `par_iter()` on slices (and, via deref, `Vec`), mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait ParallelSlice<T: Sync> {
    /// Borrowing parallel iterator over the elements.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut()` on slices, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint mutable chunks of `chunk_size`
    /// elements (the last chunk may be shorter).
    ///
    /// # Panics
    /// Panics if `chunk_size` is zero.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<&mut [T]> {
        assert!(chunk_size > 0, "chunk size must be nonzero");
        ParIter {
            items: self.chunks_mut(chunk_size).collect(),
        }
    }
}

/// `into_par_iter()`, mirroring `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for core::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

pub mod prelude {
    //! One-stop import, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn chunks_mut_covers_whole_slice() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 64 + j) as u64;
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn map_collect_preserves_order() {
        let squares: Vec<usize> = (0..10_000).into_par_iter().map(|i| i * i).collect();
        for (i, &sq) in squares.iter().enumerate() {
            assert_eq!(sq, i * i);
        }
    }

    #[test]
    fn par_iter_on_vec_by_reference() {
        let starts: Vec<usize> = (0..97).map(|i| i * 3).collect();
        let sums: Vec<usize> = starts.par_iter().map(|&s| s + 1).collect();
        assert_eq!(sums.len(), 97);
        assert_eq!(sums[96], 96 * 3 + 1);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let mut empty: Vec<u8> = Vec::new();
        empty
            .par_chunks_mut(8)
            .enumerate()
            .for_each(|_| unreachable!());
        let v: Vec<u8> = Vec::new().into_par_iter().map(|x: u8| x).collect();
        assert!(v.is_empty());
    }
}
