//! Offline shim for the subset of the `criterion` crate API this workspace
//! uses (see `vendor/README.md` for why the real crate is unavailable).
//!
//! It runs each benchmark closure for a warm-up pass plus `sample_size`
//! timed samples and prints median / mean / min wall-clock time per
//! iteration. There is no statistical analysis, outlier rejection, or HTML
//! report — just honest, stable timings suitable for eyeballing
//! regressions; the numbers recorded in `EXPERIMENTS.md` come from the
//! simulator, not from this harness.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Iterations folded into one timed sample (amortizes timer overhead for
/// sub-microsecond bodies).
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples after a warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: how many iterations fill MIN_SAMPLE_TIME?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MIN_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        self.samples.sort();
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{label:<50} median {:>12?}  mean {:>12?}  min {:>12?}  ({} samples)",
            median,
            mean,
            min,
            self.samples.len(),
        );
    }
}

/// Benchmark identifier composed of a function name and a parameter
/// (mirrors `criterion::BenchmarkId`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// A named group of related benchmarks (mirrors
/// `criterion::BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    b.report(label);
}

/// Top-level benchmark driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_sample_size();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.effective_sample_size();
        run_one(&id.into(), sample_size, &mut f);
        self
    }

    /// Overrides the default sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn effective_sample_size(&self) -> usize {
        if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        }
    }
}

/// Declares a group of benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main` (mirrors
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        // A single add can measure as 0 ns under a coarse monotonic clock,
        // so only the sample count is contractual.
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 42), &42, |b, &v| b.iter(|| v * 2));
        g.finish();
        c.bench_function("toplevel", |b| b.iter(|| black_box(3)));
    }

    criterion_group!(demo_group, demo_bench);

    fn demo_bench(c: &mut Criterion) {
        c.sample_size(2)
            .bench_function("macro_path", |b| b.iter(|| 0u8));
    }

    #[test]
    fn macros_expand() {
        demo_group();
    }
}
