//! Offline shim for the subset of the `proptest` crate API this workspace
//! uses (see `vendor/README.md` for why the real crate is unavailable).
//!
//! It is a deterministic property-testing engine:
//!
//! * [`strategy::Strategy`] — value generators: numeric ranges (half-open
//!   and inclusive), `any::<T>()` over the full bit domain, tuples,
//!   [`sample::select`], and `prop_map`.
//! * the [`proptest!`] macro — expands each property into a `#[test]` that
//!   samples its strategies and runs the body for `cases` iterations.
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] — in-case
//!   verdicts: failures report the generated inputs, assumptions reject
//!   the case without consuming it.
//!
//! Differences from real proptest, on purpose:
//!
//! * **No shrinking.** A failing case prints the exact generated inputs
//!   (everything here is seeded, so re-running reproduces it) instead of a
//!   minimized counterexample.
//! * **Determinism by default.** The RNG seed is a fixed constant derived
//!   from the test name, not OS entropy, so CI runs are reproducible; see
//!   [`test_runner::Config::with_seed`] to pin a different stream.

pub mod test_runner {
    //! Case driver: configuration, RNG, and the run loop.

    /// Deterministic RNG handed to strategies (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Per-property configuration (shim for `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Base RNG seed; combined with the test name so sibling
        /// properties in one `proptest!` block see different streams.
        pub seed: u64,
        /// Maximum rejected (`prop_assume!`) cases tolerated globally
        /// before the property errors out.
        pub max_global_rejects: u32,
    }

    /// Default seed: ASCII "VENOM-PT" — fixed so runs reproduce.
    pub const DEFAULT_SEED: u64 = 0x56454e4f4d2d5054;

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                seed: DEFAULT_SEED,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// Config running `cases` cases (mirrors
        /// `ProptestConfig::with_cases`).
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }

        /// Pins the base RNG seed (shim extension; real proptest seeds from
        /// the environment instead).
        pub fn with_seed(self, seed: u64) -> Self {
            Config { seed, ..self }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed: discard the case, draw another.
        Reject,
        /// `prop_assert!` failed: the property is falsified.
        Fail(String),
    }

    /// Drives one property for the configured number of cases.
    pub struct TestRunner {
        config: Config,
        name: &'static str,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner; `name` disambiguates the RNG stream and
        /// prefixes failure reports.
        pub fn new(config: Config, name: &'static str) -> Self {
            let mut h = config.seed;
            for b in name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001B3);
            }
            let rng = TestRng::from_seed(h);
            TestRunner { config, name, rng }
        }

        /// Runs the case closure until `cases` successes.
        ///
        /// # Panics
        /// Panics when a case fails (reporting its inputs) or when too many
        /// cases in a row are rejected by `prop_assume!`.
        pub fn run<F>(&mut self, mut case: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let mut successes = 0u32;
            let mut rejects = 0u32;
            let mut case_index = 0u64;
            while successes < self.config.cases {
                case_index += 1;
                match case(&mut self.rng) {
                    Ok(()) => successes += 1,
                    Err(TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects <= self.config.max_global_rejects,
                            "property {}: too many prop_assume! rejections \
                             ({rejects}) — strategy and assumption disagree",
                            self.name,
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} falsified at case #{case_index} \
                             (seed 0x{:016x}):\n{msg}",
                            self.name, self.config.seed,
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A strategy that always yields a clone of one value (shim for
    /// `proptest::strategy::Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = (rng.next_u64() as u128) % width;
                    (self.start as u128).wrapping_add(off) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let width = (*self.end() as u128)
                        .wrapping_sub(*self.start() as u128)
                        .wrapping_add(1);
                    let off = (rng.next_u64() as u128) % width;
                    (*self.start() as u128).wrapping_add(off) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start
                        + rng.next_unit_f64() as $t * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Full-bit-domain generation (shim for `proptest::arbitrary`). For
    /// floats this covers every bit pattern, NaN and infinities included,
    /// matching real proptest's `any::<f32>()` spirit.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_from_bits {
        ($($t:ty => $w:expr),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    (rng.next_u64() >> (64 - $w)) as $t
                }
            }
        )*};
    }
    arbitrary_from_bits!(u8 => 8, u16 => 16, u32 => 32, u64 => 64, usize => 64);

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            (rng.next_u64() >> 32) as u32 as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits((rng.next_u64() >> 32) as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }

    /// The `any::<T>()` entry point.
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Strategy over `T`'s full domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod sample {
    //! Strategies drawing from explicit candidate sets.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform choice from a fixed list (see [`select`]).
    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Strategy choosing uniformly from `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Declares property tests (shim for `proptest::proptest!`).
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner =
                $crate::test_runner::TestRunner::new($cfg, stringify!($name));
            runner.run(
                |__proptest_rng| -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &($strat),
                            __proptest_rng,
                        );
                    )+
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// In-case assertion: on failure the case (with its generated inputs) is
/// reported and the property panics.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// In-case equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        $crate::prop_assert!($left == $right, $($fmt)*);
    }};
}

/// Discards the current case when `cond` is false; the runner draws a
/// fresh one without counting this against `cases`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

pub mod prelude {
    //! One-stop import, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::{Config, TestRng};

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..10_000 {
            let x = (3usize..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let y = (1u32..=8).sample(&mut rng);
            assert!((1..=8).contains(&y));
            let f = (-2.0f32..5.0).sample(&mut rng);
            assert!((-2.0..5.0).contains(&f));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1usize..=4, 2usize..10).prop_map(|(a, b)| a * 100 + b);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..1000 {
            let v = strat.sample(&mut rng);
            assert!((100..=409).contains(&v), "{v}");
        }
    }

    #[test]
    fn select_draws_all_options() {
        let strat = crate::sample::select(vec![4usize, 8, 10]);
        let mut rng = TestRng::from_seed(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            match strat.sample(&mut rng) {
                4 => seen[0] = true,
                8 => seen[1] = true,
                10 => seen[2] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn same_config_same_stream() {
        let strat = 0u64..1_000_000;
        let mut a = TestRng::from_seed(9);
        let mut b = TestRng::from_seed(9);
        for _ in 0..100 {
            assert_eq!(strat.sample(&mut a), strat.sample(&mut b));
        }
    }

    proptest! {
        #![proptest_config(Config::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 0u64..1000, y in any::<u16>()) {
            prop_assume!(y != 0);
            prop_assert!(x < 1000);
            prop_assert_eq!(y, y);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(Config::with_cases(8))]
            #[allow(dead_code)]
            fn inner(x in 0u64..10) {
                prop_assert!(x < 5, "x={x}");
            }
        }
        inner();
    }
}
