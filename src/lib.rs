//! # VENOM — Vectorized N:M sparsity on (simulated) Sparse Tensor Cores
//!
//! Facade crate for the VENOM/Spatha reproduction. It re-exports the public
//! API of every subsystem crate so that applications can depend on a single
//! `venom` crate:
//!
//! * [`fp16`] — software half-precision arithmetic (tensor-core numerics).
//! * [`tensor`] — dense matrices, reference/parallel GEMM, RNG fills.
//! * [`mod@format`] — sparsity masks, the 2:4 and V:N:M compressed
//!   formats, CSR and column-vector encodings for the baselines, and the
//!   [`format::SparseKernel`] trait every format executes through.
//! * [`sim`] — the Ampere-class GPU simulator (occupancy, memory hierarchy,
//!   shared-memory banks, tensor-core pipeline).
//! * [`spatha`] — the Spatha SpMM library (the paper's contribution).
//! * [`runtime`] — the plan-once/run-many inference engine: descriptor
//!   in, format-erased [`runtime::MatmulPlan`] out, with automatic
//!   format selection ([`runtime::Engine::plan_auto`]).
//! * [`baselines`] — cuBLAS-, cuSparseLt-, Sputnik- and CLASP-like models.
//! * [`pruner`] — magnitude and second-order (OBS) pruning, energy metric,
//!   gradual structure-decay scheduling.
//! * [`quant`] — calibrated symmetric int8 quantization (absmax and
//!   percentile calibrators) and the exact i32 references behind the
//!   engine's `i8` descriptor path.
//! * [`dnn`] — transformer inference substrate and latency profiling.
//!
//! ## Quickstart
//!
//! ```
//! use venom::prelude::*;
//!
//! // A 128 x 256 weight matrix pruned to 64:2:8 (75% sparsity)...
//! let dense = venom::tensor::random::normal_matrix(128, 256, 0.0, 1.0, 42).to_half();
//! let cfg = VnmConfig::new(64, 2, 8);
//! let mask = venom::pruner::magnitude::prune_vnm(&dense.to_f32(), cfg);
//! let sparse = VnmMatrix::compress(&dense, &mask, cfg);
//!
//! // ...multiplied against dense activations on the simulated RTX 3090.
//! let b = venom::tensor::random::normal_matrix(256, 64, 0.0, 1.0, 7).to_half();
//! let device = DeviceConfig::rtx3090();
//! let out = venom::spatha::spmm(&sparse, &b, &SpmmOptions::default(), &device);
//! assert_eq!(out.c.rows(), 128);
//! assert!(out.timing.time_ms > 0.0);
//! ```

pub use venom_baselines as baselines;
pub use venom_core as spatha;
pub use venom_dnn as dnn;
pub use venom_format as format;
pub use venom_fp16 as fp16;
pub use venom_pruner as pruner;
pub use venom_quant as quant;
pub use venom_runtime as runtime;
pub use venom_sim as sim;
pub use venom_tensor as tensor;

/// Commonly used types, re-exported for `use venom::prelude::*`.
pub mod prelude {
    pub use venom_core::{spmm, SpmmOptions, SpmmResult, TileConfig};
    pub use venom_format::{
        MatmulFormat, NmConfig, QuantVnmMatrix, SparsityMask, VnmConfig, VnmMatrix,
    };
    pub use venom_fp16::Half;
    pub use venom_quant::Calibration;
    pub use venom_runtime::{
        DType, Engine, GemmPlan, MatmulDescriptor, MatmulPlan, PlanError, QuantSpmmPlan, SpmmPlan,
    };
    pub use venom_sim::{DeviceConfig, KernelTiming};
    pub use venom_tensor::{GemmShape, Matrix};
}
