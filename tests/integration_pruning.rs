//! Cross-crate integration of the second-order pruning pipeline:
//! trainer -> per-sample gradients -> Fisher -> OBS selection -> format
//! compression -> kernel execution.

use venom::dnn::train::{gaussian_clusters_split, Mlp};
use venom::format::SparsityMask;
use venom::prelude::*;
use venom::pruner::scheduler::{DecayStep, StructureDecayScheduler};
use venom::pruner::{
    energy, magnitude, prune_nm_second_order, prune_vnm_second_order, SecondOrderOptions,
};
use venom::tensor::Matrix;

const DIM: usize = 32;
const HIDDEN: usize = 64;
const CLASSES: usize = 4;

fn trained_model() -> (
    Mlp,
    venom::dnn::train::data::Dataset,
    venom::dnn::train::data::Dataset,
) {
    let (train, test) = gaussian_clusters_split(40, 20, DIM, CLASSES, 2.5, 5);
    let mut mlp = Mlp::new(DIM, HIDDEN, CLASSES, 7);
    mlp.train(&train, 400, 0.5, None);
    (mlp, train, test)
}

fn apply(mlp: &mut Mlp, mask: &SparsityMask, weights: &Matrix<f32>) {
    for j in 0..HIDDEN {
        for d in 0..DIM {
            mlp.w1.set(
                j,
                d,
                if mask.get(j, d) {
                    weights.get(j, d)
                } else {
                    0.0
                },
            );
        }
    }
}

#[test]
fn gradual_second_order_preserves_accuracy_at_2_8() {
    let (dense, train, test) = trained_model();
    let dense_acc = dense.accuracy(&test);
    assert!(
        dense_acc > 0.9,
        "dense model must be good (got {dense_acc})"
    );

    let target = VnmConfig::new(16, 2, 8);
    let sched = StructureDecayScheduler::halving(target);
    let opts = SecondOrderOptions::default();
    let mut mlp = dense.clone();
    let mut final_mask = None;
    for step in sched.steps() {
        let grads = mlp.per_sample_w1_grads(&train);
        let (mask, updated) = match step {
            DecayStep::Nm(nm) => prune_nm_second_order(&mlp.w1, &grads, *nm, &opts),
            DecayStep::Vnm(v) => prune_vnm_second_order(&mlp.w1, &grads, *v, &opts),
        };
        apply(&mut mlp, &mask, &updated);
        mlp.train(&train, 120, 0.5, Some(&mask));
        final_mask = Some(mask);
    }
    let acc = mlp.accuracy(&test);
    assert!(
        acc > dense_acc - 0.08,
        "2:8 gradual pruning should lose little accuracy: {acc} vs {dense_acc}"
    );

    // The final mask is V:N:M compliant and compressible + runnable.
    let mask = final_mask.unwrap();
    assert!(mask.complies_vnm(target));
    let sparse = VnmMatrix::compress(&mlp.w1.to_half(), &mask, target);
    let x = venom::tensor::random::activation_matrix(DIM, 8, 11).to_half();
    let out = venom::spatha::spmm(
        &sparse,
        &x,
        &venom::spatha::SpmmOptions::default(),
        &DeviceConfig::rtx3090(),
    );
    assert!(out.c.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn second_order_energy_not_worse_than_magnitude_much() {
    // The OBS selection optimises loss, not energy; but on a trained model
    // it should stay in the same ballpark as magnitude selection.
    let (dense, train, _) = trained_model();
    let grads = dense.per_sample_w1_grads(&train);
    let cfg = VnmConfig::new(16, 2, 8);
    let (mask2, _) = prune_vnm_second_order(&dense.w1, &grads, cfg, &SecondOrderOptions::default());
    let mask_mag = magnitude::prune_vnm(&dense.w1, cfg);
    let e2 = energy(&dense.w1, &mask2);
    let em = energy(&dense.w1, &mask_mag);
    assert!(e2 > 0.5 * em, "second-order energy {e2} vs magnitude {em}");
}

#[test]
fn scheduler_steps_take_model_to_target_sparsity() {
    let (dense, train, _) = trained_model();
    let target = VnmConfig::new(16, 2, 16);
    let sched = StructureDecayScheduler::halving(target);
    let mut mlp = dense;
    let opts = SecondOrderOptions::default();
    let mut sparsities = Vec::new();
    for step in sched.steps() {
        let grads = mlp.per_sample_w1_grads(&train);
        let (mask, updated) = match step {
            DecayStep::Nm(nm) => prune_nm_second_order(&mlp.w1, &grads, *nm, &opts),
            DecayStep::Vnm(v) => prune_vnm_second_order(&mlp.w1, &grads, *v, &opts),
        };
        apply(&mut mlp, &mask, &updated);
        mlp.train(&train, 60, 0.5, Some(&mask));
        sparsities.push(mask.sparsity());
    }
    assert!(sparsities.windows(2).all(|w| w[0] < w[1]), "{sparsities:?}");
    assert!((sparsities.last().unwrap() - target.sparsity()).abs() < 0.02);
}
