//! Format-conformance suite for the unified matmul surface.
//!
//! One generic harness asserts, for **every** `SparseKernel` implementor
//! (the five sparse formats plus dense), that the full
//! compress → plan → run chain is bit-identical to the format's own
//! `spmm_ref` oracle — across the V x N:M grid, including an
//! all-dense (unpruned) weight and weights with fully empty rows. The
//! same harness checks the per-call trait path and the fused linear
//! chain, so any new `SparseKernel` implementor inherits the whole
//! contract by being added to one list.

use venom::format::{MatmulFormat, SparseKernel, SparsityMask};
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::tensor::random;

/// The conformance grid: every supported vector length crossed with the
/// paper's most-used N:M patterns.
const GRID_V: [usize; 3] = [8, 16, 64];
const GRID_NM: [(usize, usize); 3] = [(2, 8), (2, 10), (2, 16)];

fn engine() -> Engine {
    Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(48)
}

/// Formats whose eligibility never depends on the nonzero structure
/// (given block-divisible shapes for Blocked-ELL).
const ALWAYS_ELIGIBLE: [MatmulFormat; 4] = [
    MatmulFormat::Csr,
    MatmulFormat::Cvse,
    MatmulFormat::BlockedEll,
    MatmulFormat::Dense,
];

/// The generic conformance check: plans `weights` in `format` through
/// the engine and asserts every run path against the plan's own dense
/// reconstruction oracle and per-call dispatch.
fn check_format(engine: &Engine, format: MatmulFormat, weights: &Matrix<Half>, tag: &str) {
    let desc = engine.descriptor(weights.rows(), weights.cols());
    let plan = engine
        .plan_with_format(format, &desc, weights)
        .unwrap_or_else(|e| panic!("{tag}: {e}"));
    assert_eq!(plan.format(), format, "{tag}");

    // compress -> plan -> run must reproduce the format's spmm_ref (the
    // per-call trait path IS the format's reference-equal staged kernel).
    let b = random::normal_matrix(weights.cols(), 19, 0.0, 1.0, 7).to_half();
    let got = plan.run(&b);
    assert_eq!(got, plan.run_oneshot(&b), "{tag}: planned vs per-call");

    // The compression is lossless over the kept entries: re-planning the
    // dense reconstruction in the same format reproduces the same bits.
    let replanned = engine
        .plan_with_format(format, &desc, &plan.weight_dense())
        .unwrap_or_else(|e| panic!("{tag}: re-plan: {e}"));
    assert_eq!(replanned.run(&b), got, "{tag}: re-planned reconstruction");

    // Batched dispatch equals separate runs.
    let b2 = random::normal_matrix(weights.cols(), 5, 0.0, 1.0, 8).to_half();
    let batch = plan.run_batch(&[&b, &b2]);
    assert_eq!(batch[0], got, "{tag}: batch[0]");
    assert_eq!(batch[1], plan.run(&b2), "{tag}: batch[1]");

    // The fused layer chain equals the per-call layer chain.
    let x = random::activation_matrix(11, weights.cols(), 9);
    let bias: Vec<f32> = (0..weights.rows())
        .map(|i| (i as f32) * 0.01 - 0.2)
        .collect();
    assert_eq!(
        plan.run_linear(&x, &bias),
        plan.run_linear_percall(&x, &bias),
        "{tag}: fused linear"
    );
}

/// Direct trait-level oracle check for a concrete kernel value.
fn check_kernel_oracle(kernel: &dyn SparseKernel, b: &Matrix<Half>, tag: &str) {
    assert_eq!(
        kernel.spmm_parallel(b),
        kernel.spmm_ref(b),
        "{tag}: parallel vs ref"
    );
}

#[test]
fn every_format_conforms_across_the_vnm_grid() {
    let engine = engine();
    for v in GRID_V {
        for (n, m) in GRID_NM {
            let cfg = VnmConfig::new(v, n, m);
            // Partial row blocks and a partial K group; 64 rows keeps the
            // Blocked-ELL block sizes dividing (pad rows via v multiples).
            let (r, k) = (2 * v.max(16), 4 * m);
            let w = random::normal_matrix(r, k, 0.0, 1.0, v as u64 + m as u64);
            let mask = magnitude::prune_vnm(&w, cfg);
            let pruned = mask.apply_f32(&w).to_half();
            let tag = format!("V={v} {n}:{m}");

            // V:N:M itself (the compress -> plan -> run acceptance path).
            let vnm = VnmMatrix::compress(&pruned, &mask, cfg);
            let b = random::normal_matrix(k, 13, 0.0, 1.0, 3).to_half();
            check_kernel_oracle(&vnm, &b, &format!("{tag} vnm"));
            let plan = engine.plan_spmm(&vnm);
            assert_eq!(plan.run(&b), vnm.spmm_ref(&b), "{tag}: vnm plan vs oracle");

            for f in ALWAYS_ELIGIBLE {
                check_format(&engine, f, &pruned, &format!("{tag} {f}"));
            }
            // The engine's vnm path re-detects the pattern from zeros —
            // only for kernel-launchable V (the probed grid starts at 16;
            // V=8 weights plan through `plan_spmm` as above).
            if v >= 16 {
                check_format(
                    &engine,
                    MatmulFormat::Vnm,
                    &pruned,
                    &format!("{tag} vnm-redetect"),
                );
            }
        }
    }
}

#[test]
fn nm_format_conforms_on_its_native_pattern() {
    // 2:4 is the one pattern the nm backend serves; check it end to end.
    let engine = engine();
    let dense = random::normal_matrix(32, 64, 0.0, 1.0, 11).to_half();
    let a = venom::format::NmCompressed::compress_magnitude(&dense, NmConfig::new(2, 4));
    let pruned = a.decompress();
    let b = random::normal_matrix(64, 9, 0.0, 1.0, 12).to_half();
    check_kernel_oracle(&a, &b, "nm 2:4");
    check_format(&engine, MatmulFormat::Nm, &pruned, "nm 2:4");
}

#[test]
fn empty_rows_conform_in_every_format() {
    // Rows 3..8 fully pruned: row_ptr runs of zero length, empty CVSE
    // vectors, empty ELL block rows.
    let engine = engine();
    let w = random::normal_matrix(16, 32, 0.0, 1.0, 13);
    let mask = SparsityMask::from_fn(16, 32, |r, c| !(3..8).contains(&r) && c % 4 < 2);
    let pruned = mask.apply_f32(&w).to_half();
    for f in ALWAYS_ELIGIBLE {
        check_format(&engine, f, &pruned, &format!("empty-rows {f}"));
    }
    // The 2:4-compliant mask also serves the nm and vnm backends.
    check_format(&engine, MatmulFormat::Nm, &pruned, "empty-rows nm");
    check_format(&engine, MatmulFormat::Vnm, &pruned, "empty-rows vnm");
}

#[test]
fn all_dense_weights_conform_where_eligible() {
    // An unpruned weight: vnm/nm are structurally ineligible (and must
    // say so); the others serve it as stored-dense.
    let engine = engine();
    let w = random::glorot_matrix(32, 32, 14).to_half();
    for f in ALWAYS_ELIGIBLE {
        check_format(&engine, f, &w, &format!("all-dense {f}"));
    }
    let desc = engine.descriptor(32, 32);
    for f in [MatmulFormat::Vnm, MatmulFormat::Nm] {
        let err = engine.plan_with_format(f, &desc, &w).unwrap_err();
        assert!(
            !err.to_string().is_empty(),
            "{f} must explain ineligibility"
        );
    }
}

#[test]
fn plan_auto_picks_csr_for_unstructured_high_sparsity() {
    // Fig. 13: above ~90% unstructured sparsity, Sputnik's CSR kernel is
    // the winning implementation (no N:M or vector structure exists for
    // the tensor-core formats, and dense pays for every zero). plan_auto
    // must land there on the paper shape.
    let engine = Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(4096);
    let w = {
        let d = random::normal_matrix(1024, 4096, 0.0, 1.0, 21);
        let mask = SparsityMask::from_fn(1024, 4096, |r, c| {
            ((r * 131 + c * 37 + 5) % 10_000) as f64 / 10_000.0 >= 0.95
        });
        mask.apply_f32(&d).to_half()
    };
    let plan = engine.plan_auto(&engine.descriptor(1024, 4096), &w);
    assert_eq!(
        plan.format(),
        MatmulFormat::Csr,
        "cost {:?}",
        plan.cost_ms()
    );
    // And it genuinely beats the dense plan's price.
    let dense = engine
        .plan_with_format(MatmulFormat::Dense, &engine.descriptor(1024, 4096), &w)
        .unwrap();
    assert!(plan.cost_ms().unwrap() < dense.cost_ms().unwrap());
}

#[test]
fn fully_empty_weight_conforms() {
    // The degenerate all-zero weight plans and produces all-zero output
    // in every always-eligible format.
    let engine = engine();
    let w = Matrix::<Half>::zeros(16, 16);
    let b = random::normal_matrix(16, 7, 0.0, 1.0, 15).to_half();
    for f in ALWAYS_ELIGIBLE {
        let plan = engine
            .plan_with_format(f, &engine.descriptor(16, 16), &w)
            .unwrap();
        let out = plan.run(&b);
        assert!(
            out.as_slice().iter().all(|&x| x == 0.0),
            "{f}: zero weight, zero output"
        );
    }
}
