//! Bitwise-equality regression suite for the f32-staged operand pipeline.
//!
//! The staged engine (decode-once operands, LUT-backed scalar decodes,
//! strided `mma.sp` accumulation, per-thread workspaces) must produce
//! *bit-identical* results to the retained slow references — `spmm_ref`
//! over the compressed format, `gemm_ref`/`gemm_ref_strict`, and the
//! `Half`-operand `mma_sp_f16` — across the V x N:M grid and for edge
//! fp16 values (subnormals, signed zeros, extreme normals; NaN-free as
//! the kernels require finite weights).

use venom::format::{SparsityMask, VnmConfig, VnmMatrix};
use venom::fp16::Half;
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::sim::tensorcore::{mma_sp_f16, mma_sp_f16_f32b, MmaShape};
use venom::spatha::{spmm, SpmmOptions};
use venom::tensor::{gemm, random};

/// The grid the suite sweeps: every V the kernels support crossed with the
/// two N:M patterns the paper's microbenchmarks use most.
const GRID: [(usize, usize, usize); 6] = [
    (16, 2, 8),
    (16, 2, 16),
    (64, 2, 8),
    (64, 2, 16),
    (128, 2, 8),
    (128, 2, 16),
];

/// Edge-case fp16 bit patterns: subnormals (min, max, mixed), smallest and
/// largest normals, signed zeros, and ordinary values. No NaN/inf.
const EDGE_BITS: [u16; 14] = [
    0x0001, 0x8001, 0x03FF, 0x83FF, 0x0203, 0x0400, 0x8400, 0x7BFF, 0xFBFF, 0x0000, 0x8000, 0x3C00,
    0xBC00, 0x2E66,
];

fn edge_half(i: usize) -> Half {
    Half::from_bits(EDGE_BITS[(i * 7 + i / 5) % EDGE_BITS.len()])
}

fn device() -> DeviceConfig {
    DeviceConfig::rtx3090()
}

/// A V:N:M-compliant fixture whose kept weights are edge fp16 values.
fn edge_fixture(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> (VnmMatrix, SparsityMask) {
    let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
    let mask = magnitude::prune_vnm(&w, cfg);
    let dense = Matrix::from_fn(r, k, |i, j| {
        if mask.get(i, j) {
            edge_half(i * k + j)
        } else {
            Half::ZERO
        }
    });
    (VnmMatrix::compress(&dense, &mask, cfg), mask)
}

#[test]
fn staged_spmm_matches_spmm_ref_bitwise_across_grid() {
    for (v, n, m) in GRID {
        let cfg = VnmConfig::new(v, n, m);
        // Two-plus row blocks with a partial tail, a partial K group, and a
        // C that is not a multiple of mma.n (exercises the column-tail
        // accumulators).
        let (r, k, c) = (2 * v + 16, 9 * m + 3, 43);
        let (a, _) = edge_fixture(r, k, cfg, v as u64 * 31 + m as u64);
        let b = Matrix::from_fn(k, c, |i, j| edge_half(i * c + j + 3));
        let got = spmm(&a, &b, &SpmmOptions::default(), &device());
        let want = a.spmm_ref(&b);
        assert_eq!(got.c, want, "staged SpMM diverged at V={v} N={n} M={m}");
    }
}

#[test]
fn staged_spmm_matches_on_random_weights_across_grid() {
    for (v, n, m) in GRID {
        let cfg = VnmConfig::new(v, n, m);
        let (r, k, c) = (2 * v, 8 * m, 64);
        let w = random::normal_matrix(r, k, 0.0, 1.0, v as u64 + m as u64);
        let mask = magnitude::prune_vnm(&w, cfg);
        let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
        let b = random::normal_matrix(k, c, 0.0, 1.0, 7).to_half();
        let got = spmm(&a, &b, &SpmmOptions::default(), &device());
        assert_eq!(got.c, a.spmm_ref(&b), "V={v} N={n} M={m}");
    }
}

#[test]
fn staged_gemm_matches_both_references_bitwise() {
    // Edge values plus explicit zero columns to exercise the zero-skip.
    let (r, k, c) = (37, 29, 43);
    let a = Matrix::from_fn(r, k, |i, j| {
        if j % 5 == 2 {
            Half::ZERO
        } else {
            edge_half(i * k + j)
        }
    });
    let b = Matrix::from_fn(k, c, |i, j| edge_half(i * c + j + 11));
    let staged = gemm::gemm_parallel(&a, &b);
    assert_eq!(
        staged,
        gemm::gemm_ref(&a, &b),
        "staged vs zero-skip reference"
    );
    assert_eq!(
        staged,
        gemm::gemm_ref_strict(&a, &b),
        "staged vs strict reference"
    );
}

#[test]
fn staged_gemm_bias_equals_reference_plus_bias_bitwise() {
    let (r, k, c) = (24, 31, 19);
    let a = Matrix::from_fn(r, k, |i, j| edge_half(i * k + j));
    let b = Matrix::from_fn(k, c, |i, j| edge_half(i + j * k));
    let bias: Vec<f32> = (0..c).map(|j| j as f32 * 0.25 - 1.0).collect();
    let fused = gemm::gemm_bias(&a, &b, &bias);
    let reference = gemm::gemm_ref(&a, &b);
    for i in 0..r {
        for j in 0..c {
            assert_eq!(
                fused.get(i, j).to_bits(),
                (reference.get(i, j) + bias[j]).to_bits(),
                "({i},{j})"
            );
        }
    }
}

#[test]
fn staged_mma_variant_matches_retained_half_reference() {
    let shape = MmaShape::new(16, 8, 32);
    let values: Vec<Half> = (0..16 * 16).map(edge_half).collect();
    let meta: Vec<u8> = (0..16 * 16).map(|i| (i % 4) as u8).collect();
    let b: Vec<Half> = (0..32 * 8).map(|i| edge_half(i + 5)).collect();
    let b_f32: Vec<f32> = b.iter().map(|x| x.to_f32()).collect();
    let mut d_ref = vec![0.125f32; 16 * 8];
    let mut d_staged = d_ref.clone();
    mma_sp_f16(shape, &values, &meta, &b, &mut d_ref);
    mma_sp_f16_f32b(shape, &values, &meta, &b_f32, &mut d_staged);
    let bits = |d: &[f32]| d.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&d_ref), bits(&d_staged));
}

#[test]
fn lut_decode_is_exact_for_every_edge_pattern() {
    for &bits in &EDGE_BITS {
        let h = Half::from_bits(bits);
        assert_eq!(
            h.to_f32_lut().to_bits(),
            h.to_f32().to_bits(),
            "bits {bits:#06x}"
        );
    }
}
