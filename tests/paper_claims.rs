//! The paper's headline claims, asserted as integration tests.
//!
//! These encode the *shape* of every evaluation result (who wins, by
//! roughly what factor, where crossovers fall) — the contract the
//! reproduction must keep (see EXPERIMENTS.md for the measured numbers).

use venom::baselines::cublas::DenseGemm;
use venom::baselines::cusparselt::SparseLtSpmm;
use venom::baselines::{ClaspSpmm, SputnikSpmm};
use venom::format::{CsrMatrix, CvseMatrix};
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::spatha::{spmm_time_tuned, SpmmOptions};
use venom::tensor::random;

fn dev() -> DeviceConfig {
    DeviceConfig::rtx3090()
}

fn spatha_speedup(r: usize, k: usize, c: usize, cfg: VnmConfig) -> f64 {
    let dense = DenseGemm::time(GemmShape::new(r, k, c), &dev()).time_ms;
    let sparse = spmm_time_tuned(r, k, c, cfg, &SpmmOptions::default(), &dev()).time_ms;
    dense / sparse
}

/// Abstract: "Spatha achieves up to 37x speedup over cuBLAS".
#[test]
fn headline_37x_at_98_percent() {
    let s = spatha_speedup(1024, 12288, 4096, VnmConfig::new(128, 2, 100));
    assert!(
        s > 25.0 && s < 50.0,
        "98% sparsity speedup {s} (paper: 37x, cap 50x)"
    );
}

/// Fig. 9: speedups approach but stay below the theoretical caps, and
/// grow with K.
#[test]
fn fig9_caps_and_k_scaling() {
    for (m, paper) in [(10usize, 4.5), (20, 8.5), (40, 17.5), (100, 37.0)] {
        let cfg = VnmConfig::new(128, 2, m);
        let s = spatha_speedup(1024, 12288, 4096, cfg);
        let cap = cfg.theoretical_speedup_cap();
        assert!(s < cap, "2:{m}: {s} must stay below cap {cap}");
        assert!(
            s > 0.55 * paper,
            "2:{m}: {s} too far below the paper's {paper}"
        );
        // K scaling: bigger K, bigger speedup.
        let s_small = spatha_speedup(1024, 1536, 4096, cfg);
        assert!(s > s_small, "2:{m}: speedup must grow with K");
    }
}

/// Fig. 9: the column-loc overhead is negligible.
#[test]
fn fig9_column_loc_overhead_negligible() {
    let cfg = VnmConfig::new(128, 2, 20);
    let with = spmm_time_tuned(1024, 8192, 4096, cfg, &SpmmOptions::default(), &dev()).time_ms;
    let without = spmm_time_tuned(
        1024,
        8192,
        4096,
        cfg,
        &SpmmOptions {
            use_column_loc: false,
            ..SpmmOptions::default()
        },
        &dev(),
    )
    .time_ms;
    let overhead = with / without - 1.0;
    assert!(
        overhead < 0.05,
        "column-loc overhead {overhead} should be < 5%"
    );
}

/// Fig. 10: the 128-bit epilogue beats the 32-bit one, most visibly at
/// high sparsity on BERT-sized outputs, attenuated at GPT-3 size.
#[test]
fn fig10_store_width_effect() {
    let cfg = VnmConfig::new(128, 2, 100);
    let effect = |r: usize, k: usize| {
        let wide = spmm_time_tuned(r, k, 4096, cfg, &SpmmOptions::default(), &dev()).time_ms;
        let narrow = spmm_time_tuned(
            r,
            k,
            4096,
            cfg,
            &SpmmOptions {
                wide_smem_store: false,
                ..SpmmOptions::default()
            },
            &dev(),
        )
        .time_ms;
        narrow / wide
    };
    let bert = effect(1024, 4096);
    let gpt3 = effect(36864, 12288);
    assert!(
        bert > 1.1,
        "128-bit stores must matter on BERT-large ({bert})"
    );
    assert!(bert <= 2.5, "but not beyond the paper's ~2x ({bert})");
    assert!(
        gpt3 < bert,
        "the effect must attenuate on GPT-3 ({gpt3} vs {bert})"
    );
}

/// Abstract/Fig. 12: up to 1.38x over cuSparseLt at 2:4, similar at
/// large K.
#[test]
fn fig12_spatha_vs_cusparselt() {
    let at = |k: usize| {
        let lt = SparseLtSpmm::time(GemmShape::new(1024, k, 4096), &dev()).time_ms;
        let sp = spmm_time_tuned(
            1024,
            k,
            4096,
            VnmConfig::new(128, 2, 4),
            &SpmmOptions::default(),
            &dev(),
        )
        .time_ms;
        lt / sp
    };
    let small_k = at(768);
    let large_k = at(12288);
    assert!(
        small_k > 1.15 && small_k < 1.6,
        "small-K advantage {small_k} (paper up to 1.38x)"
    );
    assert!(
        large_k < small_k,
        "advantage must shrink with K ({large_k} vs {small_k})"
    );
    assert!(large_k > 0.9 && large_k < 1.25, "large-K parity {large_k}");
}

/// Fig. 12: both 2:4 libraries approach the 2x sparse tensor-core bound.
#[test]
fn fig12_two_four_speedup_bounded_by_2x() {
    for k in [3072usize, 12288] {
        let dense = DenseGemm::time(GemmShape::new(1024, k, 4096), &dev()).time_ms;
        let sp = spmm_time_tuned(
            1024,
            k,
            4096,
            VnmConfig::new(128, 2, 4),
            &SpmmOptions::default(),
            &dev(),
        )
        .time_ms;
        let s = dense / sp;
        assert!(s > 1.3 && s <= 2.05, "2:4 speedup {s} at K={k}");
    }
}

/// Fig. 13: Sputnik and CLASP beat cuBLAS only at high sparsity; Spatha
/// wins everywhere from 50% upward.
#[test]
fn fig13_crossovers() {
    let (r, k, c) = (1024usize, 4096usize, 4096usize);
    let dense_ms = DenseGemm::time(GemmShape::new(r, k, c), &dev()).time_ms;

    // Sputnik at 80%: loses; at 98%: wins.
    let sputnik = |s: f64, seed: u64| {
        let w = random::glorot_matrix(r, k, seed);
        let mask = magnitude::prune_unstructured(&w, s);
        let a = CsrMatrix::from_masked(&w.to_half(), &mask);
        dense_ms / SputnikSpmm::time(&a, c, &dev()).time_ms
    };
    assert!(sputnik(0.8, 1) < 1.0, "Sputnik must lose at 80%");
    assert!(sputnik(0.98, 2) > 1.0, "Sputnik must win at 98%");

    // CLASP vw_8 at 50%: loses; at 95%: wins, but stays within a few x.
    let clasp = |s: f64, seed: u64| {
        let w = random::glorot_matrix(r, k, seed);
        let mask = magnitude::prune_vectorwise(&w, 8, s);
        let a = CvseMatrix::from_dense(&mask.apply_f32(&w).to_half(), 8);
        dense_ms / ClaspSpmm::time(&a, c, &dev()).time_ms
    };
    assert!(clasp(0.5, 3) < 1.0, "CLASP must lose at 50%");
    let c95 = clasp(0.95, 4);
    assert!(
        c95 > 1.0 && c95 < 8.0,
        "CLASP at 95%: {c95} (paper: a few x at best)"
    );

    // Spatha wins across the board.
    for m in [4usize, 10, 40] {
        let s = spatha_speedup(r, k, c, VnmConfig::new(128, 2, m));
        assert!(s > 1.2, "Spatha must beat cuBLAS at 2:{m} (got {s})");
    }
}

/// §7.2.3 / Fig. 15: GPT-3 GEMM-time reduction ~11x at 2:32 and total
/// encoder speedup around ~3.2x.
#[test]
fn fig15_gpt3_encoder() {
    use venom::dnn::profile::{profile_layer, WeightSparsity};
    use venom::dnn::transformer::TransformerConfig;
    let cfg = TransformerConfig::gpt3_175b();
    let dense = profile_layer(&cfg, 1, WeightSparsity::Dense, &dev());
    let sparse = profile_layer(
        &cfg,
        1,
        WeightSparsity::Vnm(VnmConfig::new(64, 2, 32)),
        &dev(),
    );
    let gemm_speedup = dense.gemms_ms / sparse.gemms_ms;
    let total_speedup = dense.total_ms() / sparse.total_ms();
    assert!(
        gemm_speedup > 7.0 && gemm_speedup < 16.0,
        "GEMM speedup {gemm_speedup} (paper ~11x)"
    );
    assert!(
        total_speedup > 2.0 && total_speedup < 5.0,
        "total {total_speedup} (paper ~3.2x)"
    );
}

/// Fig. 11 / §5: energy ordering ideal > small-V > large-V > vector-wise.
#[test]
fn fig11_energy_ordering() {
    let w = random::glorot_matrix(768, 768, 2023);
    let s = 0.75;
    let ideal = venom::pruner::energy(&w, &magnitude::prune_unstructured(&w, s));
    let v1 = venom::pruner::energy(&w, &magnitude::prune_vnm(&w, VnmConfig::new(1, 2, 8)));
    let v64 = venom::pruner::energy(&w, &magnitude::prune_vnm(&w, VnmConfig::new(64, 2, 8)));
    let v128 = venom::pruner::energy(&w, &magnitude::prune_vnm(&w, VnmConfig::new(128, 2, 8)));
    let vw8 = venom::pruner::energy(&w, &magnitude::prune_vectorwise(&w, 8, s));
    let vw4 = venom::pruner::energy(&w, &magnitude::prune_vectorwise(&w, 4, s));
    assert!(
        ideal >= v1 && v1 >= v64 && v64 >= v128,
        "{ideal} {v1} {v64} {v128}"
    );
    assert!(
        v128 > vw8 && v128 > vw4,
        "V:N:M above vector-wise: {v128} vs {vw8}/{vw4}"
    );
}
