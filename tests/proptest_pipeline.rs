//! Property-based integration tests over random shapes and patterns.

use proptest::prelude::*;
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::spatha::{spmm, SpmmOptions};
use venom::tensor::{gemm, norms, random};

/// Strategy: a valid V:N:M configuration with V a multiple of 16 (the
/// kernel's requirement) and M in the paper's range.
fn vnm_config() -> impl Strategy<Value = VnmConfig> {
    (
        1usize..=4,
        prop::sample::select(vec![4usize, 5, 7, 8, 10, 16, 20]),
    )
        .prop_map(|(vmul, m)| VnmConfig::new(16 * vmul, 2, m))
}

proptest! {
    // Pinned case count AND seed: CI must explore the identical case set on
    // every run (the vendored proptest shim is deterministic by default;
    // the explicit seed makes the contract visible and survives any future
    // change of the default).
    #![proptest_config(ProptestConfig::with_cases(12).with_seed(0x56454e4f4d5f5031))]

    /// Magnitude V:N:M masks always comply and hit the pattern's sparsity.
    #[test]
    fn magnitude_masks_comply(cfg in vnm_config(), seed in 0u64..1000) {
        let rows = cfg.v * 2;
        let cols = cfg.m * 6;
        let w = random::glorot_matrix(rows, cols, seed);
        let mask = magnitude::prune_vnm(&w, cfg);
        prop_assert!(mask.complies_vnm(cfg));
        prop_assert!((mask.sparsity() - cfg.sparsity()).abs() < 0.05);
    }

    /// Compression round-trips exactly for any compliant input.
    #[test]
    fn compression_roundtrips(cfg in vnm_config(), seed in 0u64..1000) {
        let rows = cfg.v + 3; // force a partial row block
        let cols = cfg.m * 3 + 1; // force a partial K group
        let w = random::glorot_matrix(rows, cols, seed);
        let mask = magnitude::prune_vnm(&w, cfg);
        let dense = mask.apply_f32(&w).to_half();
        let vnm = VnmMatrix::compress(&dense, &mask, cfg);
        prop_assert_eq!(vnm.decompress(), dense);
    }

    /// The kernel agrees with the dense reference on every shape.
    #[test]
    fn kernel_matches_reference(cfg in vnm_config(), seed in 0u64..1000, c_cols in 9usize..40) {
        let rows = cfg.v * 2;
        let cols = cfg.m * 4;
        let w = random::glorot_matrix(rows, cols, seed);
        let mask = magnitude::prune_vnm(&w, cfg);
        let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
        let b = random::activation_matrix(cols, c_cols, seed + 1).to_half();
        let out = spmm(&a, &b, &SpmmOptions::default(), &DeviceConfig::rtx3090());
        let reference = gemm::gemm_ref(&a.decompress(), &b);
        prop_assert!(norms::allclose(&out.c, &reference, 1e-3, 1e-3),
            "max diff {}", norms::max_abs_diff(&out.c, &reference));
    }

    /// Simulated time decreases (weakly) as M grows, all else equal.
    #[test]
    fn time_monotone_in_m(seed in 0u64..100) {
        let dev = DeviceConfig::rtx3090();
        let mut prev = f64::INFINITY;
        for m in [4usize, 8, 16] {
            let cfg = VnmConfig::new(64, 2, m);
            let t = venom::spatha::spmm_time_tuned(
                512, 2048, 1024, cfg, &SpmmOptions::default(), &dev).time_ms;
            prop_assert!(t <= prev * 1.01, "m={m}: {t} vs {prev}");
            prev = t;
        }
        let _ = seed;
    }

    /// Energy is monotone in sparsity for a fixed policy.
    #[test]
    fn energy_monotone_in_sparsity(seed in 0u64..1000) {
        let w = random::glorot_matrix(64, 160, seed);
        let mut prev = f64::INFINITY;
        for m in [4usize, 8, 16, 20] {
            let cfg = VnmConfig::new(16, 2, m);
            let e = venom::pruner::energy(&w, &magnitude::prune_vnm(&w, cfg));
            prop_assert!(e < prev);
            prev = e;
        }
    }
}
