//! Cross-crate integration: pruning -> format -> kernel -> verification,
//! exercised across the configuration matrix the paper evaluates.

use venom::baselines::{DenseGemm, Mode};
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::spatha::{spmm, SpmmOptions};
use venom::tensor::{gemm, norms, random};

fn pipeline(r: usize, k: usize, c: usize, cfg: VnmConfig, seed: u64) -> (f64, f64) {
    let dev = DeviceConfig::rtx3090();
    let w = random::glorot_matrix(r, k, seed);
    let mask = magnitude::prune_vnm(&w, cfg);
    assert!(mask.complies_vnm(cfg));
    let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
    let b = random::activation_matrix(k, c, seed + 1).to_half();

    let sparse = spmm(&a, &b, &SpmmOptions::default(), &dev);
    let reference = gemm::gemm_ref(&a.decompress(), &b);
    let err = norms::rel_frobenius_error(&sparse.c, &reference);
    assert!(err < 1e-5, "{cfg} at {r}x{k}x{c}: functional error {err}");

    let dense = DenseGemm::run(&w.to_half(), &b, &dev, Mode::ModelOnly);
    (dense.timing.time_ms, sparse.timing.time_ms)
}

#[test]
fn full_pipeline_across_v_values() {
    for v in [16usize, 32, 64, 128] {
        let (dense_ms, sparse_ms) = pipeline(128, 256, 64, VnmConfig::new(v, 2, 8), v as u64);
        assert!(dense_ms > 0.0 && sparse_ms > 0.0, "V={v}");
    }
}

#[test]
fn full_pipeline_across_m_values() {
    for m in [4usize, 8, 10, 16, 20] {
        let cfg = VnmConfig::new(32, 2, m);
        let (_, sparse_ms) = pipeline(96, 320, 48, cfg, m as u64);
        assert!(sparse_ms > 0.0, "M={m}");
    }
}

#[test]
fn simulated_speedup_grows_with_sparsity_at_scale() {
    // Model-only pricing at benchmark scale: the headline monotonicity.
    let dev = DeviceConfig::rtx3090();
    let dense = DenseGemm::time(GemmShape::new(1024, 8192, 4096), &dev).time_ms;
    let mut prev_speedup = 0.0;
    for m in [4usize, 8, 16, 32, 64] {
        let cfg = VnmConfig::new(128, 2, m);
        let t =
            venom::spatha::spmm_time_tuned(1024, 8192, 4096, cfg, &SpmmOptions::default(), &dev);
        let speedup = dense / t.time_ms;
        assert!(
            speedup > prev_speedup,
            "2:{m}: speedup {speedup} should exceed 2:{}'s {prev_speedup}",
            m / 2
        );
        assert!(
            speedup <= cfg.theoretical_speedup_cap() * 1.02,
            "2:{m}: speedup {speedup} must respect the cap {}",
            cfg.theoretical_speedup_cap()
        );
        prev_speedup = speedup;
    }
    // And it must be a real speedup from 2:4 onwards.
    assert!(
        prev_speedup > 10.0,
        "2:64 should be >10x (got {prev_speedup})"
    );
}

#[test]
fn sparse_result_matches_direct_reference_on_awkward_shapes() {
    // Shapes with every divisibility hazard at once.
    let cfg = VnmConfig::new(16, 2, 10);
    let (dense_ms, sparse_ms) = pipeline(50, 73, 19, cfg, 99);
    assert!(dense_ms > 0.0 && sparse_ms > 0.0);
}

#[test]
fn batched_dense_baseline_consistency() {
    // time_batched(b=1) must agree with time() for the same shape.
    let dev = DeviceConfig::rtx3090();
    let shape = GemmShape::new(512, 64, 512);
    let single = DenseGemm::time(shape, &dev).time_ms;
    let batched = DenseGemm::time_batched(shape, 1, &dev).time_ms;
    assert!((single - batched).abs() < 1e-9);
    // And a batch of 8 takes more time but less than 8x (better fill).
    let b8 = DenseGemm::time_batched(shape, 8, &dev).time_ms;
    assert!(b8 > single && b8 < 8.0 * single);
}
