//! Bitwise-equality regression suite for the plan-once/run-many engine.
//!
//! A plan captures the weight's staged operands and tile selection at
//! build time; this suite pins the contract that *nothing* about planning
//! changes the numerics: `SpmmPlan::run` (single, batched, repeated, and
//! fused-layer calls) must be bit-identical to the one-shot `spmm`
//! dispatch — and to the compressed-format oracle `spmm_ref` — across the
//! V x N:M grid, including V = 8, which only the plan's stream executes
//! (the kernel's fragment contract needs V to be a multiple of 16, so the
//! one-shot comparison there is the oracle).

use proptest::prelude::*;
use venom::dnn::layers::{Linear, PlannedLinear};
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::spatha::spmm;
use venom::tensor::random;

/// The ISSUE-3 acceptance grid: every supported vector length crossed
/// with the paper's most-used N:M patterns.
const GRID_V: [usize; 3] = [8, 64, 128];
const GRID_NM: [(usize, usize); 3] = [(2, 8), (2, 10), (2, 16)];

fn device() -> DeviceConfig {
    DeviceConfig::rtx3090()
}

fn engine() -> Engine {
    Engine::new(device()).with_b_cols_hint(64)
}

/// A magnitude-pruned V:N:M fixture with partial row blocks and a partial
/// K group, so the tails exercise the stream's padding-drop logic.
fn fixture(cfg: VnmConfig, seed: u64) -> VnmMatrix {
    let (r, k) = (2 * cfg.v + 7, 5 * cfg.m + 3);
    let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
    let mask = magnitude::prune_vnm(&w, cfg);
    VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg)
}

#[test]
fn plan_run_matches_one_shot_spmm_across_grid() {
    for v in GRID_V {
        for (n, m) in GRID_NM {
            let cfg = VnmConfig::new(v, n, m);
            let a = fixture(cfg, v as u64 + m as u64);
            let b = random::normal_matrix(a.cols(), 43, 0.0, 1.0, 99).to_half();
            let plan = engine().plan_spmm(&a);
            let got = plan.run(&b);
            assert_eq!(got, a.spmm_ref(&b), "plan vs spmm_ref at V={v} {n}:{m}");
            if v >= 16 {
                let want = spmm(&a, &b, &SpmmOptions::default(), &device()).c;
                assert_eq!(got, want, "plan vs one-shot spmm at V={v} {n}:{m}");
            } else {
                assert!(plan.tile().is_none(), "V=8 has no launchable tile");
            }
        }
    }
}

#[test]
fn repeated_runs_stay_bit_identical_across_grid() {
    // Plan reuse must not drift: the arena-backed scratch is re-leased on
    // every call, and three consecutive runs must produce the same bits.
    for v in GRID_V {
        let cfg = VnmConfig::new(v, 2, 10);
        let a = fixture(cfg, v as u64);
        let b = random::normal_matrix(a.cols(), 21, 0.0, 1.0, 7).to_half();
        let plan = engine().plan_spmm(&a);
        let first = plan.run(&b);
        for round in 0..3 {
            assert_eq!(plan.run(&b), first, "run {round} drifted at V={v}");
        }
    }
}

#[test]
fn batched_runs_match_per_request_dispatch_across_grid() {
    for v in GRID_V {
        for (n, m) in GRID_NM {
            let cfg = VnmConfig::new(v, n, m);
            let a = fixture(cfg, v as u64 * 3 + m as u64);
            let plan = engine().plan_spmm(&a);
            let seqs: Vec<_> = (0..3)
                .map(|i| {
                    random::normal_matrix(a.cols(), 11 + 5 * i, 0.0, 1.0, 40 + i as u64).to_half()
                })
                .collect();
            let refs: Vec<&Matrix<Half>> = seqs.iter().collect();
            let batch = plan.run_batch(&refs);
            for (i, b) in seqs.iter().enumerate() {
                assert_eq!(batch[i], plan.run(b), "batch seq {i} at V={v} {n}:{m}");
                assert_eq!(batch[i], a.spmm_ref(b), "batch vs oracle at V={v} {n}:{m}");
            }
        }
    }
}

#[test]
fn fused_layer_forward_matches_percall_across_grid() {
    // The layer-level contract: the engine's fused stage->run->transpose
    // chain equals the per-call convert/transpose/spmm/transpose chain.
    for v in GRID_V {
        if v < 16 {
            continue; // forward_percall dispatches the kernel: V >= 16
        }
        for (n, m) in GRID_NM {
            let cfg = VnmConfig::new(v, n, m);
            let out_f = 2 * v + 7;
            let in_f = 5 * m + 3;
            let w = random::normal_matrix(out_f, in_f, 0.0, 1.0, v as u64 + n as u64);
            let mask = magnitude::prune_vnm(&w, cfg);
            let lin = Linear::new(&w, (0..out_f).map(|i| i as f32 * 0.01).collect());
            let sparse: PlannedLinear = lin.to_sparse(&engine(), &mask, cfg);
            let x = random::activation_matrix(19, in_f, 3);
            assert_eq!(
                sparse.forward(&x),
                sparse.forward_percall(&x),
                "fused layer at V={v} {n}:{m}"
            );
        }
    }
}

proptest! {
    // Pinned case count and seed, matching the repository's determinism
    // contract for CI (see tests/proptest_pipeline.rs).
    #![proptest_config(ProptestConfig::with_cases(16).with_seed(0x56454e4f4d5f5033))]

    /// Plan reuse across varying widths within the planned bound stays
    /// exact: one plan built at bound 64 serves every b_cols in [1, 64]
    /// with bit-identical results versus the one-shot dispatch.
    #[test]
    fn plan_reuse_across_b_cols_within_bound_is_exact(
        vi in 0usize..GRID_V.len(),
        nmi in 0usize..GRID_NM.len(),
        b_cols in 1usize..=64,
        seed in 0u64..1000,
    ) {
        let (n, m) = GRID_NM[nmi];
        let cfg = VnmConfig::new(GRID_V[vi], n, m);
        let a = fixture(cfg, seed);
        let plan = engine().plan_spmm(&a); // bound = 64 via the hint
        prop_assert!(b_cols <= plan.b_cols_bound());
        let b = random::normal_matrix(a.cols(), b_cols, 0.0, 1.0, seed + 1).to_half();
        let got = plan.run(&b);
        prop_assert_eq!(&got, &a.spmm_ref(&b));
        if cfg.v >= 16 {
            let want = spmm(&a, &b, &SpmmOptions::default(), &device()).c;
            prop_assert_eq!(&got, &want);
        }
    }
}
