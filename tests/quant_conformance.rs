//! Int8 conformance suite for the quantized V:N:M subsystem.
//!
//! Two contracts, checked across the V x N:M grid and both calibrators:
//!
//! 1. **Exactness of the integer core** — the full
//!    quantize → compress → plan → run chain (engine-built
//!    [`QuantSpmmPlan`], i16-staged stream, banded parallel replay) is
//!    *bit-identical* to the scalar i32 oracle: the container's
//!    `spmm_ref_i8` and, behind it, `venom::quant::gemm_ref_i8` over the
//!    decompressed i8 plane. Integer accumulation never rounds, so any
//!    divergence is a real bug, not a tolerance question.
//! 2. **Accuracy of the dequantized surface** — on the Fig. 9 layer
//!    shapes, the f32 output of the int8 plan stays within the
//!    *calibrator-derived* error bound of the f16 oracle: per output
//!    element, the propagated bound
//!    `sum_k (bw_r |b(k,c)| + |w(r,k)| bb + bw_r bb)` built from
//!    [`venom::quant::quant_error_bound`] of the row's stored weights
//!    (`bw_r`) and of the activation tensor (`bb`), plus a small float
//!    headroom for the two accumulations' own rounding. No hand-waved
//!    tolerances: the bound is computed from the calibrators, and the
//!    suite also asserts it is *tight enough to be meaningful* (the
//!    percentile calibrator must actually deliver smaller bounds than
//!    absmax would on heavy-tailed rows).

use venom::format::{QuantVnmMatrix, SparsityMask};
use venom::prelude::*;
use venom::pruner::magnitude;
use venom::quant::{gemm_ref_i8, quant_error_bound, Calibration};
use venom::runtime::MatmulPlan;
use venom::tensor::random;

const GRID_V: [usize; 4] = [8, 16, 64, 128];
const GRID_NM: [(usize, usize); 3] = [(2, 8), (2, 10), (2, 16)];
const CALIBRATORS: [Calibration; 2] = [Calibration::AbsMax, Calibration::Percentile(99.5)];

fn engine() -> Engine {
    Engine::new(DeviceConfig::rtx3090()).with_b_cols_hint(48)
}

/// A magnitude-pruned half weight complying with `cfg`.
fn pruned_weight(r: usize, k: usize, cfg: VnmConfig, seed: u64) -> (Matrix<Half>, SparsityMask) {
    let w = random::normal_matrix(r, k, 0.0, 1.0, seed);
    let mask = magnitude::prune_vnm(&w, cfg);
    (mask.apply_f32(&w).to_half(), mask)
}

/// A deterministic i8 operand.
fn i8_operand(rows: usize, cols: usize, seed: usize) -> Matrix<i32> {
    // Returned as i32 matrix codes in [-127, 127]; converted below.
    Matrix::from_fn(rows, cols, |r, c| {
        ((r * 31 + c * 17 + seed * 7) % 255) as i32 - 127
    })
}

fn to_i8(m: &Matrix<i32>) -> Matrix<i8> {
    Matrix::from_fn(m.rows(), m.cols(), |r, c| m.get(r, c) as i8)
}

#[test]
fn plan_run_is_bit_identical_to_the_i8_oracle_across_the_grid() {
    for &v in &GRID_V {
        for &(n, m) in &GRID_NM {
            let cfg = VnmConfig::new(v, n, m);
            let (r, k) = (2 * v.max(16), 4 * m.max(10));
            let (w, mask) = pruned_weight(r, k, cfg, (v * m) as u64);
            assert!(mask.complies_vnm(cfg));
            for calib in CALIBRATORS {
                let tag = format!("{cfg} {calib}");
                // quantize -> compress (the container) ...
                let a = VnmMatrix::compress(&w, &mask, cfg);
                let q = QuantVnmMatrix::quantize(&a, calib);
                // ... -> plan (engine path over the same weights) ...
                let eng = engine().with_calibration(calib);
                let plan = eng.plan_quant_spmm(&a);
                assert_eq!(
                    plan.weight().values(),
                    q.values(),
                    "{tag}: containers agree"
                );
                // ... -> run: bit-identical to the scalar i32 oracle.
                let b = to_i8(&i8_operand(k, 13, v + m));
                let want = q.spmm_ref_i8(&b);
                assert_eq!(plan.run_i8(&b), want, "{tag}: plan vs spmm_ref_i8");
                assert_eq!(gemm_ref_i8(&q.dense_i8(), &b), want, "{tag}: dense oracle");
                assert_eq!(
                    q.spmm_parallel_i8(&b),
                    want,
                    "{tag}: parallel container path"
                );
                // The f16-facing surface keeps planned == per-call bitwise.
                let bh = random::normal_matrix(k, 9, 0.0, 1.0, (v + m) as u64).to_half();
                assert_eq!(
                    plan.run(&bh),
                    plan.run_oneshot(&bh),
                    "{tag}: planned vs per-call"
                );
            }
        }
    }
}

#[test]
fn engine_i8_descriptor_chain_matches_the_oracle() {
    // The erased plan_with_format path (dtype I8) must execute the same
    // integer core: its f32 output over a half operand equals manual
    // quantize -> integer oracle -> dequantize.
    let cfg = VnmConfig::new(16, 2, 8);
    let (w, mask) = pruned_weight(48, 64, cfg, 3);
    assert!(mask.complies_vnm(cfg));
    let eng = engine();
    let desc = eng.descriptor(48, 64).with_dtype(venom::runtime::DType::I8);
    let plan = eng.plan_with_format(MatmulFormat::Vnm, &desc, &w).unwrap();
    let bh = random::normal_matrix(64, 11, 0.0, 1.0, 4).to_half();
    assert_eq!(plan.run(&bh), plan.run_oneshot(&bh));
    assert_eq!(plan.descriptor().dtype, venom::runtime::DType::I8);
}

/// The calibrator-derived per-element bound of `|y_q - y_f16|` for one
/// weight row: `sum_k in row (bw |b| + |w| bb + bw bb)` plus float
/// headroom for the two chains' own f32 accumulation rounding.
struct ErrorBound {
    /// `sum_k |b(k, c)|` restricted to the row's stored columns.
    babs_row: Vec<f64>,
    /// `sum_k |w(r, k)|`.
    wabs: f64,
    nnz: usize,
    bw: f64,
    bb: f64,
}

impl ErrorBound {
    fn bound(&self, c: usize) -> f64 {
        self.bw * self.babs_row[c] + (self.wabs + self.nnz as f64 * self.bw) * self.bb
    }
}

#[test]
fn dequantized_error_is_within_the_calibrator_bound_on_fig9_shapes() {
    // Fig. 9 fixes R = 1024 and sweeps K; two points of the sweep at a
    // test-sized column count.
    let shapes = [
        (1024usize, 768usize, VnmConfig::new(128, 2, 10)),
        (1024, 1536, VnmConfig::new(128, 2, 10)),
    ];
    for (r, k, cfg) in shapes {
        let (w, mask) = pruned_weight(r, k, cfg, 9);
        let a = VnmMatrix::compress(&w, &mask, cfg);
        let bh = random::activation_matrix(32, k, 10).to_half().transpose(); // k x 32
        let oracle = a.spmm_ref(&bh);
        // Stored columns of every row, gathered in one traversal.
        let mut rows_cols: Vec<Vec<usize>> = vec![Vec::new(); r];
        a.for_each_nonzero(|rr, cc, _| rows_cols[rr].push(cc));
        for calib in CALIBRATORS {
            let eng = engine().with_calibration(calib);
            let plan = eng.plan_quant_spmm(&a);
            let got = plan.run(&bh);
            // Activation-side bound: the plan quantizes b per tensor
            // with the same calibrator.
            let b_f32: Vec<f32> = bh.as_slice().iter().map(|h| h.to_f32()).collect();
            let bb = quant_error_bound(&b_f32, calib) as f64;
            let spr = a.slots_per_row();
            let mut worst_ratio = 0.0f64;
            for row in 0..r {
                let stored: Vec<f32> = a.values()[row * spr..(row + 1) * spr]
                    .iter()
                    .filter(|h| !h.is_zero())
                    .map(|h| h.to_f32())
                    .collect();
                let bw = quant_error_bound(&stored, calib) as f64;
                let cols = &rows_cols[row];
                let mut babs_row = vec![0.0f64; bh.cols()];
                for &kk in cols {
                    for (c, s) in babs_row.iter_mut().enumerate() {
                        *s += bh.get(kk, c).to_f32().abs() as f64;
                    }
                }
                let wabs: f64 = stored.iter().map(|v| v.abs() as f64).sum();
                let eb = ErrorBound {
                    babs_row,
                    wabs,
                    nnz: cols.len(),
                    bw,
                    bb,
                };
                for c in 0..bh.cols() {
                    let err = (got.get(row, c) as f64 - oracle.get(row, c) as f64).abs();
                    // Float headroom: both chains accumulate ~nnz f32
                    // products; their own rounding is far below the
                    // quantization bound but not zero.
                    let tol =
                        eb.bound(c) * (1.0 + 1e-4) + 1e-3 * (1.0 + oracle.get(row, c).abs() as f64);
                    assert!(
                        err <= tol,
                        "({row},{c}) err {err} > bound {tol} [{calib}, k={k}]"
                    );
                    worst_ratio = worst_ratio.max(err / tol);
                }
            }
            // The bound must be doing real work: the observed error gets
            // within an order of magnitude of it somewhere.
            assert!(
                worst_ratio > 1e-3,
                "bound is vacuously loose (worst err/bound {worst_ratio:.2e}) [{calib}, k={k}]"
            );
        }
    }
}

#[test]
fn percentile_calibration_tightens_heavy_tailed_rows() {
    // A weight with planted outliers: absmax spends the whole grid on
    // the outlier, the 99.5th percentile clips it and resolves the bulk
    // ~10x finer — the accuracy knob the README documents.
    let cfg = VnmConfig::new(16, 2, 8);
    let mut w = random::normal_matrix(64, 128, 0.0, 0.05, 11);
    for r in 0..64 {
        let c = (r * 7) % 128;
        w.set(r, c, 8.0 * if r % 2 == 0 { 1.0 } else { -1.0 });
    }
    let mask = magnitude::prune_vnm(&w, cfg);
    let a = VnmMatrix::compress(&mask.apply_f32(&w).to_half(), &mask, cfg);
    let q_abs = QuantVnmMatrix::quantize(&a, Calibration::AbsMax);
    let q_pct = QuantVnmMatrix::quantize(&a, Calibration::Percentile(95.0));
    let finer = (0..64)
        .filter(|&r| q_pct.scales()[r] < q_abs.scales()[r] / 5.0)
        .count();
    assert!(
        finer > 32,
        "only {finer}/64 rows got a finer grid from percentile calibration"
    );
}
